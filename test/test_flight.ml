(* Tests for the flight recorder (Obs.Flight): ring-buffer wraparound at
   capacity boundaries, cross-domain drain/absorb losslessness, the
   anomaly triggers in Measurement, dump JSONL round trips, the
   Prof.folded frame sanitization, and deterministic HTML rendering. *)

let small_control =
  lazy (Nebby.Training.train ~runs_per_cca:4 ~quic_runs_per_cca:2 ~seed:7 ())

(* every test starts from a pristine recorder in this domain *)
let reset () =
  Obs.Flight.set_capacity Obs.Flight.default_capacity;
  Obs.Flight.set_enabled true;
  Obs.Runtime.set_level Obs.Runtime.Normal;
  Obs.Flight.clear ()

let seqs evs = List.map (fun (e : Obs.Flight.event) -> e.Obs.Flight.seq) evs

let sorted_values evs =
  List.sort compare (List.map (fun (e : Obs.Flight.event) -> e.Obs.Flight.a) evs)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---- ring buffer ---- *)

let test_ring_wraparound () =
  reset ();
  Obs.Flight.set_capacity 16;
  Alcotest.(check int) "capacity floor honoured" 16 (Obs.Flight.capacity ());
  for i = 0 to 15 do
    Obs.Flight.drop ~time:(float_of_int i) ~size:i ~queue_bytes:0
  done;
  let evs = Obs.Flight.events () in
  Alcotest.(check int) "exactly at capacity: all events live" 16 (List.length evs);
  Alcotest.(check (list int)) "seqs 0..15 in order" (List.init 16 Fun.id) (seqs evs);
  (* four more pushes overwrite the four oldest slots *)
  for i = 16 to 19 do
    Obs.Flight.drop ~time:(float_of_int i) ~size:i ~queue_bytes:0
  done;
  let evs = Obs.Flight.events () in
  Alcotest.(check int) "still capacity events after wrap" 16 (List.length evs);
  Alcotest.(check (list int)) "oldest four evicted"
    (List.init 16 (fun i -> i + 4))
    (seqs evs);
  Alcotest.(check (list (float 1e-9))) "payloads follow their seqs"
    (List.init 16 (fun i -> float_of_int (i + 4)))
    (sorted_values evs);
  (* a mark taken now bounds later reads *)
  let m = Obs.Flight.mark () in
  Obs.Flight.drop ~time:99.0 ~size:99 ~queue_bytes:0;
  Alcotest.(check int) "since-mark readout" 1
    (List.length (Obs.Flight.events ~since:m ()));
  reset ()

let test_level_gating () =
  reset ();
  Obs.Runtime.set_level Obs.Runtime.Quiet;
  Obs.Flight.bif ~time:0.0 ~bytes:100;
  Obs.Flight.drop ~time:0.0 ~size:1 ~queue_bytes:0;
  Alcotest.(check int) "quiet keeps anomalies, drops the BiF series" 1
    (List.length (Obs.Flight.events ()));
  Obs.Runtime.set_level Obs.Runtime.Normal;
  Obs.Flight.enqueue ~time:0.0 ~size:1 ~queue_bytes:0;
  Obs.Flight.bif ~time:0.0 ~bytes:100;
  Alcotest.(check int) "normal adds BiF but not enqueues" 2
    (List.length (Obs.Flight.events ()));
  Obs.Runtime.set_level Obs.Runtime.Debug;
  Obs.Flight.enqueue ~time:0.0 ~size:1 ~queue_bytes:0;
  Alcotest.(check int) "debug records per-packet enqueues" 3
    (List.length (Obs.Flight.events ()));
  Obs.Flight.set_enabled false;
  Obs.Flight.drop ~time:0.0 ~size:1 ~queue_bytes:0;
  Alcotest.(check int) "disabled records nothing" 3
    (List.length (Obs.Flight.events ()));
  reset ()

let test_drain_absorb_lossless () =
  List.iter
    (fun jobs ->
      reset ();
      let n = 64 in
      let out =
        Engine.Pool.map_list ~jobs
          (fun i ->
            Obs.Flight.drop ~time:(float_of_int i) ~size:i ~queue_bytes:0;
            i)
          (List.init n Fun.id)
      in
      Alcotest.(check (list int)) "results in order" (List.init n Fun.id) out;
      let evs = Obs.Flight.events () in
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d: every worker event absorbed at join" jobs)
        n (List.length evs);
      Alcotest.(check (list (float 1e-9)))
        (Printf.sprintf "jobs=%d: payload multiset intact" jobs)
        (List.init n float_of_int) (sorted_values evs))
    [ 1; 2; 4; 8 ];
  reset ()

(* ---- measurement triggers ---- *)

let test_trigger_low_confidence_once () =
  reset ();
  let control = Lazy.force small_control in
  (* a threshold of 2 makes every verdict "low confidence" *)
  let config = { Nebby.Measurement.default_config with flight_confidence = 2.0 } in
  let r = Nebby.Measurement.measure_cca ~control ~config ~seed:1 "cubic" in
  match r.Nebby.Measurement.flight with
  | None -> Alcotest.fail "forced threshold produced no flight dump"
  | Some d ->
    Alcotest.(check int) "first trigger wins: dump is from attempt 1" 1
      d.Obs.Flight.attempt;
    if r.Nebby.Measurement.failures = [] then
      Alcotest.(check string) "trigger tag" "low_confidence" d.Obs.Flight.trigger;
    Alcotest.(check string) "subject cross-links to provenance" "cubic"
      d.Obs.Flight.subject;
    (match r.Nebby.Measurement.provenance with
    | Some p ->
      Alcotest.(check string) "same subject id as the verdict report"
        p.Obs.Provenance.subject d.Obs.Flight.subject
    | None -> Alcotest.fail "provenance missing");
    Alcotest.(check bool) "dump carries events" true (d.Obs.Flight.events <> [])

let test_no_trigger_no_dump () =
  reset ();
  let control = Lazy.force small_control in
  (* thresholds of 0 disarm the low-confidence trigger; seed 1 cubic
     classifies on the first attempt, so nothing fires *)
  let config =
    { Nebby.Measurement.default_config with flight_confidence = 0.0; flight_margin = 0.0 }
  in
  let r = Nebby.Measurement.measure_cca ~control ~config ~seed:1 "cubic" in
  Alcotest.(check bool) "clean measurement has no failures" true
    (r.Nebby.Measurement.failures = []);
  Alcotest.(check bool) "no trigger, no dump" true (r.Nebby.Measurement.flight = None)

(* ---- dump serialization ---- *)

let sample_dump =
  Obs.Flight.make_dump ~subject:"test-subject" ~trigger:"low_confidence" ~attempt:2
    ~window_s:10.0
    [
      {
        Obs.Flight.seq = 0; run = 1; time = 0.0; kind = Obs.Flight.Stage;
        a = 0.0; b = 0.0; c = 0.0; detail = "simulate:200kbps+50ms"; extra = "";
      };
      {
        Obs.Flight.seq = 1; run = 1; time = 0.125; kind = Obs.Flight.Bif;
        a = 2900.0; b = 0.0; c = 0.0; detail = ""; extra = "";
      };
      {
        Obs.Flight.seq = 2; run = 1; time = 0.25; kind = Obs.Flight.Cca_state;
        a = 14500.0; b = -1.0; c = 72500.5; detail = "cubic"; extra = "avoidance";
      };
      {
        Obs.Flight.seq = 3; run = 2; time = 0.1; kind = Obs.Flight.Drop;
        a = 1450.0; b = 29000.0; c = 0.0; detail = ""; extra = "";
      };
      {
        Obs.Flight.seq = 4; run = 2; time = 0.2; kind = Obs.Flight.Fault;
        a = 0.0; b = 0.0; c = 0.0; detail = "path.delay"; extra = "ack";
      };
    ]

let test_dump_roundtrip_bytes () =
  let text = Obs.Flight.dump_to_string sample_dump in
  let parsed = Obs.Flight.dump_of_string text in
  Alcotest.(check bool) "structural round trip" true (parsed = sample_dump);
  Alcotest.(check string) "serialize . parse . serialize is byte-identical" text
    (Obs.Flight.dump_to_string parsed);
  (* file round trip through write_dump/read_dump *)
  let path = Filename.temp_file "flight_test" ".jsonl" in
  let oc = open_out path in
  Obs.Flight.write_dump oc sample_dump;
  close_out oc;
  let re_read = Obs.Flight.read_dump path in
  Sys.remove path;
  Alcotest.(check bool) "file round trip" true (re_read = sample_dump)

(* replace the first occurrence of [sub] in [s] with [by] *)
let replace_once ~sub ~by s =
  let sl = String.length sub in
  let rec find i =
    if i + sl > String.length s then None
    else if String.sub s i sl = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i ->
    String.sub s 0 i ^ by ^ String.sub s (i + sl) (String.length s - i - sl)

let test_dump_version_gate () =
  let text = Obs.Flight.dump_to_string sample_dump in
  let bumped = replace_once ~sub:"\"version\":1" ~by:"\"version\":999" text in
  Alcotest.(check bool) "version field rewritten" true (text <> bumped);
  Alcotest.check_raises "future schema version raises"
    (Obs.Flight.Version_mismatch { expected = Obs.Flight.schema_version; got = 999 })
    (fun () -> ignore (Obs.Flight.dump_of_string bumped))

(* ---- Prof.folded frame sanitization ---- *)

let test_folded_sanitizes_frames () =
  let (), profile =
    Obs.Prof.record (fun () ->
        Obs.Span.with_ ~name:"outer stage" (fun () ->
            Obs.Span.with_ ~name:"bad;frame\tname" (fun () -> ())))
  in
  let folded = Obs.Prof.folded profile in
  (* each folded line is "stack count": the stack is everything before
     the last space and must never contain whitespace, and the separator
     ';' may only appear as the frame join *)
  let stacks =
    List.filter_map
      (fun line ->
        if String.trim line = "" then None
        else
          match String.rindex_opt line ' ' with
          | None -> Alcotest.fail "folded line has no sample count"
          | Some i -> Some (String.sub line 0 i))
      (String.split_on_char '\n' folded)
  in
  Alcotest.(check bool) "';' and whitespace sanitized inside frames" true
    (List.mem "outer_stage;bad:frame_name" stacks);
  List.iter
    (fun stack ->
      String.iter
        (fun ch ->
          if ch = ' ' || ch = '\t' then
            Alcotest.fail "whitespace survived sanitization inside a stack")
        stack)
    stacks

(* ---- rendering ---- *)

let sample_provenance =
  Obs.Provenance.make ~subject:"test-subject" ~label:"cubic" ~confidence:0.42
    ~margin:0.1
    ~features:[ ("p50", [| 1.0; -2.5 |]) ]
    ~stages:[ { Obs.Provenance.stage = "bif:p50"; fields = [ ("points", 100.0) ] } ]
    ~candidates:
      [
        {
          Obs.Provenance.source = "loss_gnb"; label = "cubic"; score = -10.0;
          confidence = 0.42;
        };
        {
          Obs.Provenance.source = "loss_gnb"; label = "bic"; score = -20.0;
          confidence = 0.0;
        };
      ]

(* a dump rich enough to exercise every chart: an oscillating BiF series
   with cwnd snapshots and all four anomaly marks *)
let rich_dump =
  let events = ref [] in
  let seq = ref 0 in
  let push run time kind a detail extra =
    events :=
      { Obs.Flight.seq = !seq; run; time; kind; a; b = 0.0; c = 0.0; detail; extra }
      :: !events;
    incr seq
  in
  push 1 0.0 Obs.Flight.Stage 0.0 "simulate:200kbps+50ms" "";
  for i = 0 to 63 do
    let t = 0.05 *. float_of_int i in
    push 1 t Obs.Flight.Bif (10000.0 +. (4000.0 *. sin (2.0 *. Float.pi *. t))) "" "";
    if i mod 8 = 0 then push 1 t Obs.Flight.Cca_state 12000.0 "cubic" "avoidance"
  done;
  push 1 1.0 Obs.Flight.Drop 1450.0 "" "";
  push 1 1.5 Obs.Flight.Fault 0.0 "path.delay" "ack";
  push 1 2.0 Obs.Flight.Stall 2.5 "" "";
  push 1 2.2 Obs.Flight.Retx 7.0 "" "";
  Obs.Flight.make_dump ~subject:"test-subject" ~trigger:"low_confidence" ~attempt:1
    ~window_s:10.0 (List.rev !events)

let sample_profile =
  [
    {
      Obs.Prof.path = "measure";
      stat = { Obs.Prof.count = 1; wall_s = 2.0; alloc_words = 0.0; major_collections = 0 };
    };
    {
      Obs.Prof.path = "measure;simulate";
      stat = { Obs.Prof.count = 4; wall_s = 1.5; alloc_words = 0.0; major_collections = 0 };
    };
  ]

let test_render_deterministic () =
  let render () =
    Obs.Render.measurement_report ~provenance:sample_provenance ~prof:sample_profile
      ~dump:rich_dump ()
  in
  let a = render () and b = render () in
  Alcotest.(check string) "byte-identical across renders" a b;
  Alcotest.(check bool) "self-contained: no scripts" false (contains ~needle:"<script" a);
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "report contains %S" needle) true
        (contains ~needle a))
    [
      "<svg"; "bytes in flight"; "cwnd"; "Frequency spectrum"; "dominant";
      "Per-stage waterfall"; "Candidate scores"; "low_confidence"; "test-subject";
      "simulate:200kbps+50ms";
    ]

let test_render_optional_sections () =
  let plain = Obs.Render.measurement_report ~dump:rich_dump () in
  Alcotest.(check bool) "no waterfall without a profile" false
    (contains ~needle:"Per-stage waterfall" plain);
  Alcotest.(check bool) "no candidate table without provenance" false
    (contains ~needle:"Candidate scores" plain);
  (* a quiet-level dump (anomalies only) degrades to a note, not charts *)
  let quiet_dump =
    Obs.Flight.make_dump ~subject:"q" ~trigger:"failure:timeout" ~attempt:1 ~window_s:10.0
      [
        {
          Obs.Flight.seq = 0; run = 1; time = 0.5; kind = Obs.Flight.Drop;
          a = 1450.0; b = 0.0; c = 0.0; detail = ""; extra = "";
        };
      ]
  in
  let quiet = Obs.Render.measurement_report ~dump:quiet_dump () in
  Alcotest.(check bool) "quiet dump renders without charts" false
    (contains ~needle:"<polyline" quiet);
  Alcotest.(check bool) "quiet dump notes the missing series" true
    (contains ~needle:"no BiF series recorded" quiet)

let suite =
  [
    Alcotest.test_case "ring wraparound at capacity boundaries" `Quick
      test_ring_wraparound;
    Alcotest.test_case "detail levels gate what is recorded" `Quick test_level_gating;
    Alcotest.test_case "drain/absorb lossless across 1/2/4/8 domains" `Quick
      test_drain_absorb_lossless;
    Alcotest.test_case "low-confidence trigger fires exactly once" `Quick
      test_trigger_low_confidence_once;
    Alcotest.test_case "no trigger, no dump" `Quick test_no_trigger_no_dump;
    Alcotest.test_case "dump jsonl round trip is byte-identical" `Quick
      test_dump_roundtrip_bytes;
    Alcotest.test_case "dump schema version gate fails loudly" `Quick
      test_dump_version_gate;
    Alcotest.test_case "folded stacks sanitize ';' and whitespace" `Quick
      test_folded_sanitizes_frames;
    Alcotest.test_case "html report renders deterministically" `Quick
      test_render_deterministic;
    Alcotest.test_case "optional sections appear only when supplied" `Quick
      test_render_optional_sections;
  ]
