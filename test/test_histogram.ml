(* Obs.Histogram: log2-bucketed mergeable histograms. The properties
   that matter downstream: merging is lossless at the bucket level (so
   pool workers can drain/absorb without skew at any domain count),
   quantile estimates stay within one octave of truth, and the JSON form
   round-trips byte-identically (the serve status file diffs on it). *)

let observe_all h vs = List.iter (Obs.Histogram.observe h) vs

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* a planted mix spanning several octaves, plus awkward values *)
let planted =
  [ 0.75; 1.0; 1.5; 2.0; 3.0; 5.0; 8.0; 13.0; 100.0; 1000.0; 1024.0; 0.001 ]

let test_counts_and_extrema () =
  let h = Obs.Histogram.create ~name:"t" () in
  Alcotest.(check int) "empty count" 0 (Obs.Histogram.count h);
  Alcotest.(check bool) "empty min is nan" true (Float.is_nan (Obs.Histogram.min_value h));
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Obs.Histogram.quantile h 0.5));
  observe_all h planted;
  Alcotest.(check int) "count" (List.length planted) (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" (List.fold_left ( +. ) 0.0 planted)
    (Obs.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "min" 0.001 (Obs.Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 1024.0 (Obs.Histogram.max_value h)

let test_single_value_exact () =
  let h = Obs.Histogram.create () in
  Obs.Histogram.observe h 42.0;
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "single value is exact at q=%g" q)
        42.0 (Obs.Histogram.quantile h q))
    [ 0.0; 0.5; 0.99; 1.0 ]

let test_quantile_within_octave () =
  (* uniform 1..1000: every quantile estimate must be within a factor
     of 2 of the exact rank statistic (one octave), clamped to range *)
  let h = Obs.Histogram.create () in
  let n = 1000 in
  for i = 1 to n do
    Obs.Histogram.observe h (float_of_int i)
  done;
  List.iter
    (fun q ->
      let exact = float_of_int (max 1 (int_of_float (q *. float_of_int n))) in
      let est = Obs.Histogram.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%g estimate %g within 2x of %g" q est exact)
        true
        (est >= exact /. 2.0 && est <= exact *. 2.0))
    [ 0.5; 0.9; 0.99 ];
  Alcotest.(check bool) "q=1 clamps to max" true (Obs.Histogram.quantile h 1.0 <= 1000.0)

let test_underflow_bucket () =
  let h = Obs.Histogram.create () in
  observe_all h [ 0.0; -5.0; Float.nan; Float.infinity; 4.0 ];
  Alcotest.(check int) "every value counted" 5 (Obs.Histogram.count h);
  match Obs.Histogram.buckets h with
  | (_, weird) :: _ -> Alcotest.(check int) "underflow bucket sorts first" 4 weird
  | [] -> Alcotest.fail "expected buckets"

(* merge losslessness under the pool's drain/absorb at every worker
   count: N domains each observe a disjoint slice into their own
   registry; after the pool joins (absorbing every drain), the collector
   registry must hold exactly the buckets of a single-domain run. *)
let test_merge_lossless_across_domains () =
  let values = List.init 64 (fun i -> 0.5 +. (float_of_int i *. 1.7)) in
  let reference = Obs.Histogram.create ~name:"pool.test" () in
  observe_all reference values;
  List.iter
    (fun jobs ->
      Obs.Histogram.reset ();
      ignore
        (Engine.Pool.map ~jobs
           (fun v -> Obs.Histogram.observe (Obs.Histogram.get "pool.test") v)
           (Array.of_list values));
      let merged = Obs.Histogram.get "pool.test" in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "buckets identical at jobs=%d" jobs)
        (Obs.Histogram.buckets reference)
        (Obs.Histogram.buckets merged);
      Alcotest.(check int)
        (Printf.sprintf "count identical at jobs=%d" jobs)
        (Obs.Histogram.count reference) (Obs.Histogram.count merged);
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "sum identical at jobs=%d" jobs)
        (Obs.Histogram.sum reference) (Obs.Histogram.sum merged);
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "extrema identical at jobs=%d" jobs)
        (Obs.Histogram.max_value reference)
        (Obs.Histogram.max_value merged);
      Obs.Histogram.reset ())
    [ 1; 2; 4; 8 ]

let test_merge_into_manual () =
  let a = Obs.Histogram.create ~name:"m" () and b = Obs.Histogram.create () in
  observe_all a [ 1.0; 2.0 ];
  observe_all b [ 4.0; 8.0; 0.5 ];
  Obs.Histogram.merge_into ~dst:a b;
  let direct = Obs.Histogram.create () in
  observe_all direct [ 1.0; 2.0; 4.0; 8.0; 0.5 ];
  Alcotest.(check (list (pair int int)))
    "merged buckets equal direct observation" (Obs.Histogram.buckets direct)
    (Obs.Histogram.buckets a);
  Alcotest.(check int) "source unchanged" 3 (Obs.Histogram.count b)

let test_json_round_trip () =
  let h = Obs.Histogram.create ~name:"rt" () in
  observe_all h (planted @ [ 0.0; -1.0 ]);
  let once = Obs.Json.to_string (Obs.Histogram.to_json h) in
  let again =
    Obs.Json.to_string (Obs.Histogram.to_json (Obs.Histogram.of_json (Obs.Json.of_string once)))
  in
  Alcotest.(check string) "serialize-parse-serialize byte identical" once again;
  let empty = Obs.Histogram.create ~name:"empty" () in
  let e_once = Obs.Json.to_string (Obs.Histogram.to_json empty) in
  let e_again =
    Obs.Json.to_string
      (Obs.Histogram.to_json (Obs.Histogram.of_json (Obs.Json.of_string e_once)))
  in
  Alcotest.(check string) "empty histogram round-trips" e_once e_again

let test_render () =
  let empty = Obs.Histogram.create ~name:"nothing.yet" () in
  let text = Obs.Histogram.render [ empty ] in
  Alcotest.(check bool) "empty histogram renders dashes" true
    (contains ~needle:"-" text);
  Alcotest.(check bool) "names the histogram" true
    (contains ~needle:"nothing.yet" text);
  let none = Obs.Histogram.render [] in
  Alcotest.(check bool) "empty list renders a note" true
    (contains ~needle:"no histograms" none);
  let h = Obs.Histogram.create ~name:"busy" () in
  observe_all h planted;
  let t1 = Obs.Histogram.render [ h ] in
  Alcotest.(check string) "render is a pure function" t1 (Obs.Histogram.render [ h ])

(* the tail-inflation regression: a 16-observation histogram whose
   values all land in one high octave used to report the bucket
   three-quarter point (e.g. p99 = 1572864 us for a 16-task census)
   regardless of where the mass actually sat. Interpolation must spread
   estimates across the bucket and never exceed the observed range. *)
let test_quantile_interpolates_within_bucket () =
  let h = Obs.Histogram.create () in
  (* all four in bucket [1024, 2048) *)
  observe_all h [ 1100.0; 1300.0; 1600.0; 2000.0 ];
  let q0 = Obs.Histogram.quantile h 0.0 and q1 = Obs.Histogram.quantile h 1.0 in
  Alcotest.(check bool) "low and high quantiles differ inside one bucket" true (q0 < q1);
  List.iter
    (fun q ->
      let est = Obs.Histogram.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%g estimate %g within observed range" q est)
        true
        (est >= 1100.0 && est <= 2000.0))
    [ 0.0; 0.25; 0.5; 0.75; 0.99; 1.0 ];
  (* monotone in q *)
  let prev = ref neg_infinity in
  List.iter
    (fun q ->
      let est = Obs.Histogram.quantile h q in
      Alcotest.(check bool) (Printf.sprintf "monotone at q=%g" q) true (est >= !prev);
      prev := est)
    [ 0.0; 0.1; 0.3; 0.5; 0.7; 0.9; 1.0 ]

let test_quantile_ub_bounds () =
  let h = Obs.Histogram.create () in
  observe_all h [ 3.0; 5.0 ];
  (* rank 1 sits in bucket (2,4]: ub is the bucket top; rank 2 sits in
     (4,8] but the ub clamps to the observed max *)
  Alcotest.(check (float 1e-9)) "q=0 bucket upper bound" 4.0
    (Obs.Histogram.quantile_ub h 0.0);
  Alcotest.(check (float 1e-9)) "q=1 clamps to max" 5.0 (Obs.Histogram.quantile_ub h 1.0);
  Alcotest.(check bool) "empty ub is nan" true
    (Float.is_nan (Obs.Histogram.quantile_ub (Obs.Histogram.create ()) 0.5));
  (* the interpolated estimate never exceeds its own upper bound *)
  let big = Obs.Histogram.create () in
  observe_all big (List.init 100 (fun i -> 1.0 +. (float_of_int i *. 17.3)));
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Printf.sprintf "quantile <= quantile_ub at q=%g" q)
        true
        (Obs.Histogram.quantile big q <= Obs.Histogram.quantile_ub big q +. 1e-9))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ]

let test_registry () =
  Obs.Histogram.reset ();
  let h = Obs.Histogram.get "reg.a" in
  Obs.Histogram.observe h 3.0;
  Alcotest.(check bool) "get returns the same histogram" true
    (Obs.Histogram.get "reg.a" == h);
  Alcotest.(check int) "all sees it" 1 (List.length (Obs.Histogram.all ()));
  let drained = Obs.Histogram.drain () in
  Alcotest.(check int) "drain empties the registry" 0 (List.length (Obs.Histogram.all ()));
  Obs.Histogram.absorb drained;
  Alcotest.(check int) "absorb restores the count" 1
    (Obs.Histogram.count (Obs.Histogram.get "reg.a"));
  Obs.Histogram.reset ()

let suite =
  [
    Alcotest.test_case "counts, sum, extrema, empty nan" `Quick test_counts_and_extrema;
    Alcotest.test_case "single value quantiles are exact" `Quick test_single_value_exact;
    Alcotest.test_case "quantiles within one octave on uniform data" `Quick
      test_quantile_within_octave;
    Alcotest.test_case "non-positive and non-finite values underflow" `Quick
      test_underflow_bucket;
    Alcotest.test_case "merge lossless under pool drain/absorb (jobs 1/2/4/8)" `Quick
      test_merge_lossless_across_domains;
    Alcotest.test_case "merge_into equals direct observation" `Quick test_merge_into_manual;
    Alcotest.test_case "JSON round-trip byte identity" `Quick test_json_round_trip;
    Alcotest.test_case "render: empty dashes, empty-list note, purity" `Quick test_render;
    Alcotest.test_case "quantiles interpolate within a bucket (tail regression)" `Quick
      test_quantile_interpolates_within_bucket;
    Alcotest.test_case "quantile_ub bounds the interpolated estimate" `Quick
      test_quantile_ub_bounds;
    Alcotest.test_case "registry get/all/drain/absorb" `Quick test_registry;
  ]
