(* Tests for the synthetic Internet: population, regions, QUIC stacks,
   heavy hitters, census machinery, and the browser model. *)

let control = lazy (Nebby.Training.train ~runs_per_cca:10 ~quic_runs_per_cca:5 ())

let test_population_deterministic () =
  let a = Internet.Population.generate ~n:100 ~seed:9 () in
  let b = Internet.Population.generate ~n:100 ~seed:9 () in
  Alcotest.(check bool) "same population" true (a = b);
  let c = Internet.Population.generate ~n:100 ~seed:10 () in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_population_shares () =
  let sites = Internet.Population.generate ~n:5000 ~seed:1 () in
  let count pred = List.length (List.filter pred sites) in
  let share pred = float_of_int (count pred) /. 5000.0 in
  let cubic_share =
    share (fun s -> Internet.Website.cca_in s Internet.Region.Ohio = "cubic")
  in
  Alcotest.(check bool) "cubic dominates (~41%)" true (cubic_share > 0.30 && cubic_share < 0.55);
  let akamai_share =
    share (fun s -> Internet.Website.cca_in s Internet.Region.Ohio = "akamai_cc")
  in
  Alcotest.(check bool) "akamai ~ 7%" true (akamai_share > 0.04 && akamai_share < 0.11);
  let quic_share = share (fun s -> s.Internet.Website.quic) in
  Alcotest.(check bool) "quic ~ 9%" true (quic_share > 0.05 && quic_share < 0.14)

let test_population_regional_differences () =
  let sites = Internet.Population.generate ~n:5000 ~seed:1 () in
  let differs s =
    let ccas = List.map (fun r -> Internet.Website.cca_in s r) Internet.Region.all in
    List.length (List.sort_uniq compare ccas) > 1
  in
  let share = float_of_int (List.length (List.filter differs sites)) /. 5000.0 in
  (* the paper: 13.6% of sites deploy differently in different regions *)
  Alcotest.(check bool)
    (Printf.sprintf "regional differences ~ 13.6%% (got %.1f%%)" (share *. 100.0))
    true
    (share > 0.08 && share < 0.20)

let test_bbr_mumbai_gap () =
  (* §4.2: BBR deployment lags in Mumbai/Sao Paulo because sites fall back
     to CUBIC there *)
  let sites = Internet.Population.generate ~n:5000 ~seed:1 () in
  let bbr_in region =
    List.length (List.filter (fun s -> Internet.Website.cca_in s region = "bbr") sites)
  in
  Alcotest.(check bool) "fewer BBR sites in Mumbai than Ohio" true
    (bbr_in Internet.Region.Mumbai < bbr_in Internet.Region.Ohio)

let test_quic_cca_subset () =
  let sites = Internet.Population.generate ~n:2000 ~seed:3 () in
  List.iter
    (fun s ->
      match s.Internet.Website.quic_cca with
      | None -> Alcotest.(check bool) "no quic cca without quic" false s.Internet.Website.quic
      | Some cca ->
        Alcotest.(check bool) "quic stacks only ship cubic/bbr/reno" true
          (List.mem cca [ "cubic"; "bbr"; "newreno" ]))
    sites

let test_regions () =
  Alcotest.(check int) "five vantage points" 5 (List.length Internet.Region.all);
  let names = List.map Internet.Region.name Internet.Region.all in
  Alcotest.(check bool) "distinct names" true (List.length (List.sort_uniq compare names) = 5)

let test_quic_stack_inventory () =
  Alcotest.(check int) "22 implementations" 22 (List.length Internet.Quic_stack.all);
  Alcotest.(check int) "11 stacks" 11 (List.length Internet.Quic_stack.stacks);
  let cubics =
    List.length (List.filter (fun i -> i.Internet.Quic_stack.cca = "cubic") Internet.Quic_stack.all)
  in
  Alcotest.(check int) "11 CUBIC implementations" 11 cubics;
  match Internet.Quic_stack.find ~stack:"quiche" ~cca:"cubic" with
  | Some impl ->
    Alcotest.(check (float 1e-9)) "quiche cubic conformance" 0.08 impl.conformance
  | None -> Alcotest.fail "quiche cubic missing"

let test_conformant_stack_classified () =
  let control = Lazy.force control in
  let plugins = Nebby.Classifier.extended_plugins control in
  match Internet.Quic_stack.find ~stack:"mvfst" ~cca:"cubic" with
  | None -> Alcotest.fail "mvfst cubic missing"
  | Some impl ->
    let report =
      Nebby.Measurement.measure ~control ~plugins ~proto:Netsim.Packet.Quic ~seed:61
        ~make_cca:impl.Internet.Quic_stack.make ()
    in
    Alcotest.(check string) "mvfst cubic classified" "cubic" report.Nebby.Measurement.label

let test_heavy_hitters_table () =
  Alcotest.(check int) "9 table-5 rows" 9 (List.length Internet.Heavy_hitters.table5);
  Alcotest.(check int) "17 table-8 services" 17 (List.length Internet.Heavy_hitters.table8);
  let amazon =
    List.find (fun e -> e.Internet.Heavy_hitters.site = "amazon.com") Internet.Heavy_hitters.table5
  in
  let site = Internet.Heavy_hitters.website_of_entry ~rank:1 amazon in
  Alcotest.(check string) "amazon bbr in ohio" "bbr"
    (Internet.Website.cca_in site Internet.Region.Ohio);
  Alcotest.(check string) "amazon cubic in mumbai" "cubic"
    (Internet.Website.cca_in site Internet.Region.Mumbai)

let test_census_small_sample () =
  let control = Lazy.force control in
  let sites = Internet.Population.generate ~n:12 ~seed:77 () in
  let tally =
    Internet.Census.run ~control ~proto:Netsim.Packet.Tcp ~region:Internet.Region.Ohio sites
  in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 tally in
  Alcotest.(check int) "every site tallied" 12 total

let test_census_quic_unresponsive () =
  let control = Lazy.force control in
  let site =
    match Internet.Population.generate ~n:50 ~seed:77 () with
    | sites -> List.find (fun s -> not s.Internet.Website.quic) sites
  in
  Alcotest.(check string) "non-quic site unresponsive" "unresponsive"
    (Internet.Census.measure_site ~control ~proto:Netsim.Packet.Quic
       ~region:Internet.Region.Ohio site)

let test_census_scaling () =
  let scaled = Internet.Census.scale_to ~total:20_000 [ ("cubic", 41); ("bbr", 13) ] in
  Alcotest.(check int) "counts rescaled" 15_185 (List.assoc "cubic" scaled)

(* shares must not divide by zero on degenerate tallies, and an
   all-unknown census is still a well-formed distribution *)
let test_census_shares_edge_cases () =
  Alcotest.(check (list (pair string (float 1e-9)))) "empty tally yields no shares" []
    (Internet.Census.shares []);
  Alcotest.(check (list (pair string (float 1e-9))))
    "all-zero tally keeps its keys at share 0"
    [ ("cubic", 0.0); ("unknown", 0.0) ]
    (Internet.Census.shares [ ("cubic", 0); ("unknown", 0) ]);
  Alcotest.(check (list (pair string (float 1e-9))))
    "all-unknown verdicts carry the whole share"
    [ ("unknown", 1.0) ]
    (Internet.Census.shares [ ("unknown", 7) ]);
  let shares = Internet.Census.shares [ ("cubic", 3); ("bbr", 1) ] in
  Alcotest.(check (list string)) "order preserved" [ "cubic"; "bbr" ] (List.map fst shares);
  Alcotest.(check (float 1e-9)) "shares sum to 1" 1.0
    (List.fold_left (fun acc (_, s) -> acc +. s) 0.0 shares)

let test_census_history () =
  Alcotest.(check int) "four historical snapshots" 4 (List.length Internet.Census_history.historical);
  Alcotest.(check string) "bbr3 mapped" "BBRv3" (Internet.Census_history.class_of_label "bbr3");
  let snap =
    Internet.Census_history.snapshot_of_census ~total_hosts:100 [ ("cubic", 50); ("unknown", 50) ]
  in
  Alcotest.(check (float 1e-6)) "share computed" 50.0
    (List.assoc "CUBIC" snap.Internet.Census_history.shares)

let test_class_of_label_novel () =
  let cls = Internet.Census_history.class_of_label in
  (* the BBR family maps onto its published display classes *)
  Alcotest.(check string) "bbr" "BBRv1" (cls "bbr");
  Alcotest.(check string) "bbr2" "BBRv2" (cls "bbr2");
  Alcotest.(check string) "bbr3" "BBRv3" (cls "bbr3");
  Alcotest.(check string) "bbr_unknown folds into BBRv3" "BBRv3" (cls "bbr_unknown");
  (* verdicts the censuses can't place are Unclassified, not dropped *)
  List.iter
    (fun l ->
      Alcotest.(check string) (Printf.sprintf "%s unclassified" l) "Unclassified" (cls l))
    [ "unknown"; "unresponsive"; "copa"; "vivace" ];
  (* a label the registry has never seen passes through verbatim so a
     novel deployment shows up by name instead of vanishing *)
  List.iter
    (fun l -> Alcotest.(check string) (Printf.sprintf "%s passthrough" l) l (cls l))
    [ "bbr4"; "prague"; "swift" ]

let test_snapshot_of_empty_tally () =
  let snap = Internet.Census_history.snapshot_of_census ~total_hosts:0 [] in
  Alcotest.(check (list (pair string (float 1e-9)))) "empty tally yields no shares" []
    snap.Internet.Census_history.shares;
  (* an all-zero tally is dropped rather than dividing by zero *)
  let zeros =
    Internet.Census_history.snapshot_of_census ~total_hosts:0 [ ("cubic", 0) ]
  in
  Alcotest.(check (list (pair string (float 1e-9)))) "all-zero tally yields no shares" []
    zeros.Internet.Census_history.shares;
  Alcotest.(check string) "placeholder study label intact" "Nebby (this repo)"
    zeros.Internet.Census_history.study

let test_browser_flows_classified () =
  let control = Lazy.force control in
  let svc =
    List.find (fun s -> s.Internet.Heavy_hitters.service = "Netflix") Internet.Heavy_hitters.table8
  in
  let flows = Internet.Browser.measure_service ~control ~seed:41 svc in
  Alcotest.(check int) "one flow per asset kind" 2 (List.length flows);
  List.iter
    (fun (f : Internet.Browser.flow_report) ->
      let confusable = [ f.truth; "unknown" ]
        @ (match f.truth with
          | "newreno" -> [ "hstcp" ]  (* the known near-identical pair *)
          | "hstcp" -> [ "newreno" ]
          | _ -> [])
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s flow classified as truth or unknown (%s vs %s)"
           (match f.asset with Internet.Browser.Video -> "video" | Static -> "static")
           f.label f.truth)
        true
        (List.mem f.label confusable))
    flows

let test_shared_bottleneck_contention () =
  let c =
    Internet.Browser.shared_bottleneck ~profile:Nebby.Profile.delay_50ms ~seed:5 ~cca_a:"bbr"
      ~cca_b:"cubic" ()
  in
  (* both flows make progress and the bottleneck is fully used *)
  Alcotest.(check bool) "flow a progresses" true (c.throughput_a > 1_000.0);
  Alcotest.(check bool) "flow b progresses" true (c.throughput_b > 1_000.0);
  Alcotest.(check bool) "bottleneck shared" true
    (c.throughput_a +. c.throughput_b < 2.2 *. c.fair_share)

let suite =
  [
    Alcotest.test_case "population generation is deterministic" `Quick test_population_deterministic;
    Alcotest.test_case "population matches the paper's shares" `Quick test_population_shares;
    Alcotest.test_case "regional deployment differences exist" `Quick
      test_population_regional_differences;
    Alcotest.test_case "BBR lags in Mumbai (finding 1)" `Quick test_bbr_mumbai_gap;
    Alcotest.test_case "QUIC sites serve stack-supported CCAs" `Quick test_quic_cca_subset;
    Alcotest.test_case "five measurement regions" `Quick test_regions;
    Alcotest.test_case "QUIC stack inventory matches Table 10" `Quick test_quic_stack_inventory;
    Alcotest.test_case "conformant mvfst CUBIC classified" `Slow test_conformant_stack_classified;
    Alcotest.test_case "heavy hitter tables are complete" `Quick test_heavy_hitters_table;
    Alcotest.test_case "census tallies every site" `Slow test_census_small_sample;
    Alcotest.test_case "census marks non-QUIC sites unresponsive" `Quick
      test_census_quic_unresponsive;
    Alcotest.test_case "census scaling rescales counts" `Quick test_census_scaling;
    Alcotest.test_case "census shares survive degenerate tallies" `Quick
      test_census_shares_edge_cases;
    Alcotest.test_case "historical snapshots present (Table 11)" `Quick test_census_history;
    Alcotest.test_case "class_of_label: BBR family, unknowns, novel labels" `Quick
      test_class_of_label_novel;
    Alcotest.test_case "snapshot_of_census survives an empty tally" `Quick
      test_snapshot_of_empty_tally;
    Alcotest.test_case "browser flows classify per asset" `Slow test_browser_flows_classified;
    Alcotest.test_case "shared bottleneck shows contention" `Quick test_shared_bottleneck_contention;
  ]
