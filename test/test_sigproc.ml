(* Unit and property tests for the signal-processing substrate. *)

let check_close ?(eps = 1e-6) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ---- FFT ---- *)

let test_fft_roundtrip () =
  let n = 64 in
  let real = Array.init n (fun i -> sin (0.3 *. float_of_int i) +. (0.5 *. float_of_int (i mod 5))) in
  let orig = Array.copy real in
  let imag = Array.make n 0.0 in
  Sigproc.Fft.transform ~real ~imag;
  Sigproc.Fft.inverse ~real ~imag;
  Array.iteri (fun i x -> check_close ~eps:1e-9 "roundtrip" orig.(i) x) real

let test_fft_pure_tone () =
  (* a pure cosine at bin 4 must put all energy in bins 4 and n-4 *)
  let n = 64 in
  let real = Array.init n (fun i -> cos (2.0 *. Float.pi *. 4.0 *. float_of_int i /. float_of_int n)) in
  let imag = Array.make n 0.0 in
  Sigproc.Fft.transform ~real ~imag;
  let mag k = sqrt ((real.(k) *. real.(k)) +. (imag.(k) *. imag.(k))) in
  Alcotest.(check bool) "energy at bin 4" true (mag 4 > 31.0);
  Alcotest.(check bool) "no energy at bin 7" true (mag 7 < 1e-6)

let test_fft_rejects_bad_length () =
  Alcotest.check_raises "non-power-of-2" (Invalid_argument "Fft.transform: length must be a power of 2")
    (fun () -> Sigproc.Fft.transform ~real:(Array.make 12 0.0) ~imag:(Array.make 12 0.0))

let test_lowpass_removes_high_freq () =
  let dt = 0.01 in
  let n = 512 in
  (* 2 Hz signal + 40 Hz noise; cut at 10 Hz *)
  let signal i = sin (2.0 *. Float.pi *. 2.0 *. (float_of_int i *. dt)) in
  let noisy =
    Array.init n (fun i -> signal i +. (0.5 *. sin (2.0 *. Float.pi *. 40.0 *. (float_of_int i *. dt))))
  in
  let filtered = Sigproc.Fft.lowpass ~dt ~cutoff:10.0 noisy in
  let err = ref 0.0 in
  (* ignore edges where padding bleeds in *)
  for i = 50 to n - 51 do
    err := Float.max !err (Float.abs (filtered.(i) -. signal i))
  done;
  Alcotest.(check bool) "noise removed" true (!err < 0.1)

let prop_fft_roundtrip =
  QCheck.Test.make ~name:"fft inverse recovers the input" ~count:100
    QCheck.(array_of_size (QCheck.Gen.return 32) (float_bound_exclusive 100.0))
    (fun xs ->
      let real = Array.copy xs and imag = Array.make (Array.length xs) 0.0 in
      Sigproc.Fft.transform ~real ~imag;
      Sigproc.Fft.inverse ~real ~imag;
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) xs real)

(* ---- Polyfit ---- *)

let test_polyfit_exact () =
  let coeffs = [| 2.0; -3.0; 0.5; 1.25 |] in
  let xs = Array.init 50 (fun i -> float_of_int i /. 49.0) in
  let ys = Array.map (Sigproc.Polyfit.eval coeffs) xs in
  let fit = Sigproc.Polyfit.fit ~degree:3 ~xs ~ys in
  Array.iteri (fun i c -> check_close ~eps:1e-6 "coefficient recovered" coeffs.(i) c) fit

let test_polyfit_mse_zero_on_exact () =
  let xs = Array.init 20 (fun i -> float_of_int i) in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  let fit = Sigproc.Polyfit.fit ~degree:1 ~xs ~ys in
  Alcotest.(check bool) "mse ~ 0" true (Sigproc.Polyfit.mse ~coeffs:fit ~xs ~ys < 1e-12)

let test_polyfit_eval_horner () =
  check_close "horner" 20.0 (Sigproc.Polyfit.eval [| 2.0; 3.0; 1.0 |] 3.0)

let prop_polyfit_line =
  QCheck.Test.make ~name:"polyfit recovers random lines" ~count:100
    QCheck.(pair (float_range (-10.0) 10.0) (float_range (-10.0) 10.0))
    (fun (a, b) ->
      let xs = Array.init 30 (fun i -> float_of_int i /. 29.0) in
      let ys = Array.map (fun x -> a +. (b *. x)) xs in
      let fit = Sigproc.Polyfit.fit ~degree:1 ~xs ~ys in
      Float.abs (fit.(0) -. a) < 1e-6 && Float.abs (fit.(1) -. b) < 1e-6)

(* ---- Series ---- *)

let test_resample_zero_order_hold () =
  let pts = Sigproc.Series.of_pairs [ (0.0, 1.0); (0.25, 2.0); (1.0, 3.0) ] in
  let t0, values = Sigproc.Series.resample ~dt:0.5 pts in
  check_close "t0" 0.0 t0;
  Alcotest.(check (array (float 1e-9))) "hold semantics" [| 1.0; 2.0; 3.0 |] values

let test_normalize_range () =
  let out = Sigproc.Series.normalize [| 5.0; 10.0; 7.5 |] in
  Alcotest.(check (array (float 1e-9))) "normalized" [| 0.0; 1.0; 0.5 |] out

let test_normalize_constant () =
  let out = Sigproc.Series.normalize [| 4.0; 4.0; 4.0 |] in
  Alcotest.(check (array (float 1e-9))) "constant maps to zero" [| 0.0; 0.0; 0.0 |] out

let test_sample_uniform_endpoints () =
  let xs = Array.init 100 (fun i -> float_of_int i) in
  let s = Sigproc.Series.sample_uniform ~n:10 xs in
  Alcotest.(check int) "length" 10 (Array.length s);
  check_close "first kept" 0.0 s.(0);
  check_close "last kept" 99.0 s.(9)

let test_derivative_linear () =
  let xs = Array.init 10 (fun i -> 3.0 *. float_of_int i) in
  let d = Sigproc.Series.derivative ~dt:1.0 xs in
  Array.iter (fun v -> check_close "constant slope" 3.0 v) d

let prop_normalize_bounds =
  QCheck.Test.make ~name:"normalize output is within [0,1]" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let out = Sigproc.Series.normalize (Array.of_list xs) in
      Array.for_all (fun x -> x >= 0.0 && x <= 1.0) out)

(* ---- Stats ---- *)

let gaussian_sample seed n =
  let rng = Netsim.Rng.create seed in
  Array.init n (fun _ -> Netsim.Rng.gaussian rng ~mean:0.0 ~std:1.0)

let test_normality_accepts_gaussian () =
  Alcotest.(check bool) "gaussian passes" true
    (Sigproc.Stats.normality_soft_pass (gaussian_sample 5 300))

let test_normality_rejects_bimodal () =
  let rng = Netsim.Rng.create 5 in
  let xs =
    Array.init 300 (fun _ ->
        (if Netsim.Rng.bool rng 0.5 then -8.0 else 8.0) +. Netsim.Rng.gaussian rng ~mean:0.0 ~std:0.3)
  in
  let k2, p = Sigproc.Stats.dagostino_k2 xs in
  Alcotest.(check bool) "k2 large" true (k2 > 10.0);
  Alcotest.(check bool) "p small" true (p < 0.01)

let test_skewness_symmetric () =
  Alcotest.(check bool) "small skew" true
    (Float.abs (Sigproc.Stats.skewness (gaussian_sample 6 5000)) < 0.1)

let test_normal_quantile_inverts_cdf () =
  List.iter
    (fun p ->
      let x = Sigproc.Stats.normal_quantile p in
      Alcotest.(check bool) "cdf(quantile p) ~ p" true
        (Float.abs (Sigproc.Stats.normal_cdf x -. p) < 1e-3))
    [ 0.01; 0.1; 0.5; 0.9; 0.99 ]

let test_erf_known_values () =
  Alcotest.(check bool) "erf 0" true (Float.abs (Sigproc.Stats.erf 0.0) < 1e-9);
  Alcotest.(check bool) "erf 1" true (Float.abs (Sigproc.Stats.erf 1.0 -. 0.8427) < 1e-3);
  Alcotest.(check bool) "erf is odd" true
    (Float.abs (Sigproc.Stats.erf (-1.0) +. Sigproc.Stats.erf 1.0) < 1e-9)

(* ---- seeded property sweeps ----

   Deterministic counterparts of the QCheck properties above: cases are
   drawn from Netsim.Rng at fixed seeds, so a failure always reproduces
   bit-for-bit (no shrinking needed — the failing case prints its index). *)

let property_cases = 100

let prop_seeded_fft_roundtrip () =
  let rng = Netsim.Rng.create 1301 in
  for case = 1 to property_cases do
    let n = 16 lsl Netsim.Rng.int rng 5 (* 16..256, powers of 2 *) in
    let xs = Array.init n (fun _ -> Netsim.Rng.uniform rng (-100.0) 100.0) in
    let real = Array.copy xs and imag = Array.make n 0.0 in
    Sigproc.Fft.transform ~real ~imag;
    Sigproc.Fft.inverse ~real ~imag;
    Array.iteri
      (fun i x ->
        if Float.abs (x -. xs.(i)) > 1e-6 then
          Alcotest.fail
            (Printf.sprintf "case %d (n=%d): sample %d drifted by %g" case n i
               (Float.abs (x -. xs.(i)))))
      real
  done

let prop_seeded_polyfit_planted () =
  let rng = Netsim.Rng.create 1303 in
  for case = 1 to property_cases do
    let degree = 1 + Netsim.Rng.int rng 3 in
    let planted =
      Array.init (degree + 1) (fun _ -> Netsim.Rng.uniform rng (-5.0) 5.0)
    in
    let xs = Array.init 60 (fun i -> float_of_int i /. 59.0) in
    let ys = Array.map (Sigproc.Polyfit.eval planted) xs in
    let fit = Sigproc.Polyfit.fit ~degree ~xs ~ys in
    Array.iteri
      (fun i c ->
        if Float.abs (c -. planted.(i)) > 1e-5 then
          Alcotest.fail
            (Printf.sprintf "case %d (degree %d): coefficient %d: planted %g, fitted %g" case
               degree i planted.(i) c))
      fit
  done

let prop_seeded_stats_invariants () =
  let rng = Netsim.Rng.create 1307 in
  for case = 1 to property_cases do
    let n = 2 + Netsim.Rng.int rng 100 in
    (* mix wide uniforms with near-constant data, the rounding-hazard case
       for the variance *)
    let base = Netsim.Rng.uniform rng (-1e6) 1e6 in
    let spread = if case mod 4 = 0 then 1e-9 else Float.abs base +. 1.0 in
    let xs =
      Array.init n (fun _ -> base +. Netsim.Rng.uniform rng (-.spread) spread)
    in
    let var = Sigproc.Series.variance xs in
    if not (var >= 0.0) then
      Alcotest.fail (Printf.sprintf "case %d: variance %g < 0" case var);
    let std = Sigproc.Series.std xs in
    if Float.abs ((std *. std) -. var) > 1e-9 *. Float.max 1.0 var then
      Alcotest.fail (Printf.sprintf "case %d: std^2 = %g but variance = %g" case (std *. std) var);
    (* quantiles: monotone in q, bounded by the extremes, median between *)
    let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 ] in
    let values = List.map (fun q -> Sigproc.Series.quantile q xs) qs in
    let rec check_monotone = function
      | a :: (b :: _ as rest) ->
        if a > b then Alcotest.fail (Printf.sprintf "case %d: quantiles not monotone" case);
        check_monotone rest
      | _ -> ()
    in
    check_monotone values;
    if Sigproc.Series.quantile 0.0 xs <> Sigproc.Series.minimum xs then
      Alcotest.fail (Printf.sprintf "case %d: quantile 0 is not the minimum" case);
    if Sigproc.Series.quantile 1.0 xs <> Sigproc.Series.maximum xs then
      Alcotest.fail (Printf.sprintf "case %d: quantile 1 is not the maximum" case)
  done

(* ---- GNB ---- *)

let test_gnb_separable () =
  let rng = Netsim.Rng.create 17 in
  let cluster mean n =
    List.init n (fun _ ->
        [| mean +. Netsim.Rng.gaussian rng ~mean:0.0 ~std:0.3;
           (2.0 *. mean) +. Netsim.Rng.gaussian rng ~mean:0.0 ~std:0.3 |])
  in
  let model = Sigproc.Gnb.fit [ ("a", cluster 0.0 50); ("b", cluster 5.0 50) ] in
  Alcotest.(check (option string)) "a classified" (Some "a")
    (Sigproc.Gnb.predict model [| 0.1; 0.2 |]);
  Alcotest.(check (option string)) "b classified" (Some "b")
    (Sigproc.Gnb.predict model [| 5.1; 9.8 |])

let test_gnb_margin_unknown () =
  let rng = Netsim.Rng.create 17 in
  let cluster mean n =
    List.init n (fun _ -> [| mean +. Netsim.Rng.gaussian rng ~mean:0.0 ~std:1.0 |])
  in
  let model = Sigproc.Gnb.fit [ ("a", cluster 0.0 50); ("b", cluster 1.0 50) ] in
  (* dead between two overlapping clusters: the margin must refuse *)
  Alcotest.(check (option string)) "ambiguous point rejected" None
    (Sigproc.Gnb.predict ~margin:1.0 model [| 0.5 |])

let test_gnb_log_likelihood_order () =
  let model =
    Sigproc.Gnb.fit
      [ ("low", [ [| 0.0 |]; [| 0.1 |]; [| -0.1 |] ]); ("high", [ [| 10.0 |]; [| 10.1 |]; [| 9.9 |] ]) ]
  in
  match Sigproc.Gnb.log_likelihoods model [| 0.0 |] with
  | (best, _) :: _ -> Alcotest.(check string) "sorted most likely first" "low" best
  | [] -> Alcotest.fail "no likelihoods"

let test_gnb_rejects_dim_mismatch () =
  let model = Sigproc.Gnb.fit [ ("a", [ [| 0.0 |]; [| 1.0 |] ]); ("b", [ [| 5.0 |]; [| 6.0 |] ]) ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Gnb.log_likelihoods: dimension mismatch")
    (fun () -> ignore (Sigproc.Gnb.log_likelihoods model [| 0.0; 1.0 |]))

let suite =
  [
    Alcotest.test_case "fft roundtrips" `Quick test_fft_roundtrip;
    Alcotest.test_case "fft concentrates a pure tone" `Quick test_fft_pure_tone;
    Alcotest.test_case "fft rejects non-power-of-2 input" `Quick test_fft_rejects_bad_length;
    Alcotest.test_case "lowpass removes high frequencies" `Quick test_lowpass_removes_high_freq;
    QCheck_alcotest.to_alcotest prop_fft_roundtrip;
    Alcotest.test_case "polyfit recovers exact cubic" `Quick test_polyfit_exact;
    Alcotest.test_case "polyfit mse vanishes on exact data" `Quick test_polyfit_mse_zero_on_exact;
    Alcotest.test_case "polyfit eval uses Horner correctly" `Quick test_polyfit_eval_horner;
    QCheck_alcotest.to_alcotest prop_polyfit_line;
    Alcotest.test_case "resample holds previous value" `Quick test_resample_zero_order_hold;
    Alcotest.test_case "normalize maps to [0,1]" `Quick test_normalize_range;
    Alcotest.test_case "normalize handles constants" `Quick test_normalize_constant;
    Alcotest.test_case "uniform sampling keeps endpoints" `Quick test_sample_uniform_endpoints;
    Alcotest.test_case "derivative of a line is its slope" `Quick test_derivative_linear;
    QCheck_alcotest.to_alcotest prop_normalize_bounds;
    Alcotest.test_case "seeded sweep: fft roundtrip over random signals" `Quick
      prop_seeded_fft_roundtrip;
    Alcotest.test_case "seeded sweep: polyfit recovers planted polynomials" `Quick
      prop_seeded_polyfit_planted;
    Alcotest.test_case "seeded sweep: variance and quantile invariants" `Quick
      prop_seeded_stats_invariants;
    Alcotest.test_case "normality tests accept gaussians" `Quick test_normality_accepts_gaussian;
    Alcotest.test_case "normality tests reject bimodal data" `Quick test_normality_rejects_bimodal;
    Alcotest.test_case "skewness of symmetric data is small" `Quick test_skewness_symmetric;
    Alcotest.test_case "normal quantile inverts the cdf" `Quick test_normal_quantile_inverts_cdf;
    Alcotest.test_case "erf matches known values" `Quick test_erf_known_values;
    Alcotest.test_case "gnb separates distinct clusters" `Quick test_gnb_separable;
    Alcotest.test_case "gnb margin refuses ambiguity" `Quick test_gnb_margin_unknown;
    Alcotest.test_case "gnb ranks likelihoods" `Quick test_gnb_log_likelihood_order;
    Alcotest.test_case "gnb checks dimensions" `Quick test_gnb_rejects_dim_mismatch;
  ]
