(* Tests for the core Nebby library: BiF estimation, the preparation
   pipeline, the classifiers, and end-to-end measurement. *)

(* One shared (lazily built) training fixture keeps the suite fast. *)
let control = lazy (Nebby.Training.train ~runs_per_cca:10 ~quic_runs_per_cca:5 ())

let profile = Nebby.Profile.delay_50ms
let rtt = Nebby.Profile.rtt profile

(* ---- profiles ---- *)

let test_profile_constants () =
  Alcotest.(check (float 1e-6)) "200 kbps in bytes/s" 25_000.0 profile.Nebby.Profile.bandwidth;
  Alcotest.(check (float 1e-6)) "rtt = 2*(base+extra)" 0.12 rtt;
  Alcotest.(check int) "buffer = 2 BDP" 6_000 profile.Nebby.Profile.buffer_bytes;
  Alcotest.(check (float 1e-6)) "bdp" 3_000.0 (Nebby.Profile.bdp profile)

let test_profile_pair_distinct () =
  match Nebby.Profile.default_pair with
  | [ a; b ] ->
    Alcotest.(check bool) "second has more delay" true
      (b.Nebby.Profile.extra_delay > a.Nebby.Profile.extra_delay)
  | _ -> Alcotest.fail "expected exactly two profiles"

(* ---- BiF estimation ---- *)

let test_tcp_bif_accuracy () =
  let r = Nebby.Testbed.run_cca ~profile ~seed:3 "cubic" in
  let acc =
    Nebby.Bif.accuracy
      ~estimate:(Nebby.Bif.estimate r.Nebby.Testbed.trace)
      ~truth:r.ground_truth_bif
  in
  Alcotest.(check bool) (Printf.sprintf "tcp accuracy %.2f > 0.85" acc) true (acc > 0.85)

let test_quic_bif_accuracy () =
  let r = Nebby.Testbed.run_cca ~profile ~proto:Netsim.Packet.Quic ~seed:3 "bbr" in
  let acc =
    Nebby.Bif.accuracy
      ~estimate:(Nebby.Bif.estimate r.Nebby.Testbed.trace)
      ~truth:r.ground_truth_bif
  in
  Alcotest.(check bool) (Printf.sprintf "quic accuracy %.2f > 0.75" acc) true (acc > 0.75)

let test_bif_nonnegative () =
  List.iter
    (fun proto ->
      let r = Nebby.Testbed.run_cca ~profile ~proto ~seed:9 "newreno" in
      List.iter
        (fun (_, v) -> Alcotest.(check bool) "BiF >= 0" true (v >= 0.0))
        (Nebby.Bif.estimate r.Nebby.Testbed.trace))
    [ Netsim.Packet.Tcp; Netsim.Packet.Quic ]

let test_bif_accuracy_improves_with_delay () =
  (* Figure 3's mechanism: more added delay -> more of the pipe visible ->
     better BiF estimates *)
  let acc extra =
    let p = Nebby.Profile.make ~extra_delay:extra () in
    let r = Nebby.Testbed.run ~profile:p ~seed:5 ~make_cca:(Cca.Registry.create "cubic") () in
    Nebby.Bif.accuracy
      ~estimate:(Nebby.Bif.estimate r.Nebby.Testbed.trace)
      ~truth:r.ground_truth_bif
  in
  Alcotest.(check bool) "90 ms beats 5 ms" true (acc 0.090 > acc 0.005)

let test_retransmission_correction () =
  (* hand-build a trace: 10 data packets, one retransmitted; the estimate
     must subtract the lost original *)
  let trace = Netsim.Trace.create () in
  let mss = 250 in
  for i = 0 to 9 do
    Netsim.Trace.record trace ~now:(0.01 *. float_of_int i)
      (Netsim.Packet.data Netsim.Packet.Tcp ~id:i ~seq:(i * mss) ~payload:mss ~retx:false
         ~now:(0.01 *. float_of_int i))
  done;
  (* retransmission of segment 3 observed at t=0.2 *)
  Netsim.Trace.record trace ~now:0.2
    (Netsim.Packet.data Netsim.Packet.Tcp ~id:99 ~seq:(3 * mss) ~payload:mss ~retx:true ~now:0.2);
  (match List.rev (Nebby.Bif.estimate trace) with
  | (_, last) :: _ ->
    Alcotest.(check (float 1.0)) "retx credited" (float_of_int (9 * mss)) last
  | [] -> Alcotest.fail "no estimate")

(* ---- pipeline ---- *)

let synthetic_sawtooth ~period ~n () =
  (* 1 Hz-ish sawtooth from 5 kB up to 10 kB with sharp drops *)
  List.init n (fun i ->
      let t = 0.02 *. float_of_int i in
      let phase = Float.rem t period /. period in
      (t, 5000.0 +. (5000.0 *. phase)))

let test_pipeline_segments_sawtooth () =
  let points = synthetic_sawtooth ~period:5.0 ~n:1500 () in
  let p = Nebby.Pipeline.prepare ~rtt:0.12 points in
  Alcotest.(check bool) "multiple back-offs found"
    true
    (List.length p.Nebby.Pipeline.backoffs >= 3);
  Alcotest.(check bool) "multiple segments extracted" true
    (Nebby.Pipeline.segment_count p >= 2)

let test_pipeline_flat_trace_single_segment () =
  let points = List.init 1000 (fun i -> (0.02 *. float_of_int i, 5000.0)) in
  let p = Nebby.Pipeline.prepare ~rtt:0.12 points in
  Alcotest.(check int) "no back-offs" 0 (List.length p.Nebby.Pipeline.backoffs);
  Alcotest.(check int) "one segment (minus slow-start head)" 1 (Nebby.Pipeline.segment_count p)

let test_pipeline_smoothing_removes_fast_noise () =
  let rng = Netsim.Rng.create 4 in
  let points =
    List.init 1000 (fun i ->
        (0.02 *. float_of_int i, 5000.0 +. Netsim.Rng.gaussian rng ~mean:0.0 ~std:300.0))
  in
  let p = Nebby.Pipeline.prepare ~rtt:0.12 points in
  let sd = Sigproc.Series.std p.Nebby.Pipeline.smoothed in
  Alcotest.(check bool) "noise attenuated" true (sd < 200.0)

let test_segment_values_positive () =
  let r = Nebby.Testbed.run_cca ~profile ~seed:3 "cubic" in
  let p = Nebby.Measurement.prepare_result ~profile r in
  List.iter
    (fun (seg : Nebby.Pipeline.segment) ->
      Alcotest.(check bool) "nonnegative" true (seg.raw_min >= 0.0);
      Alcotest.(check bool) "duration positive" true (seg.duration > 0.0))
    p.Nebby.Pipeline.segments

(* ---- features ---- *)

let test_features_of_linear_segment () =
  let seg =
    {
      Nebby.Pipeline.start_time = 0.0;
      duration = 4.0;
      values = Array.init 200 (fun i -> float_of_int i);
      raw_max = 199.0;
      raw_min = 0.0;
      drop_frac = 0.5;
    }
  in
  match Nebby.Features.of_segment seg with
  | None -> Alcotest.fail "linear segment must be fittable"
  | Some f ->
    Alcotest.(check int) "degree 1" 1 f.Nebby.Features.degree;
    Alcotest.(check (float 0.05)) "slope 1 after normalization" 1.0 f.coeffs.(0)

let test_features_of_cubic_segment () =
  let seg =
    {
      Nebby.Pipeline.start_time = 0.0;
      duration = 4.0;
      values = Array.init 200 (fun i ->
          let x = float_of_int i /. 199.0 in
          ((2.0 *. x) -. 1.0) ** 3.0);
      raw_max = 1.0;
      raw_min = -1.0;
      drop_frac = 0.0;
    }
  in
  match Nebby.Features.of_segment seg with
  | None -> Alcotest.fail "cubic segment must be fittable"
  | Some f -> Alcotest.(check int) "degree 3" 3 f.Nebby.Features.degree

let test_feature_vector_dimensions () =
  let seg =
    {
      Nebby.Pipeline.start_time = 0.0;
      duration = 4.0;
      values = Array.init 100 float_of_int;
      raw_max = 99.0;
      raw_min = 0.0;
      drop_frac = 0.3;
    }
  in
  match Nebby.Features.of_segment seg with
  | Some f ->
    Alcotest.(check int) "advertised dimensionality" Nebby.Features.dimensions
      (Array.length (Nebby.Features.vector ~rtt:0.12 f))
  | None -> Alcotest.fail "fittable"

(* ---- classifiers (integration) ---- *)

let classify_once ?proto name seed =
  let control = Lazy.force control in
  let plugins = Nebby.Classifier.extended_plugins control in
  (Nebby.Measurement.measure_cca ~control ~plugins ?proto ~seed name).Nebby.Measurement.label

let test_classifies_cubic () = Alcotest.(check string) "cubic" "cubic" (classify_once "cubic" 501)
let test_classifies_bbr () = Alcotest.(check string) "bbr" "bbr" (classify_once "bbr" 502)
let test_classifies_vegas () = Alcotest.(check string) "vegas" "vegas" (classify_once "vegas" 503)

let test_classifies_bbr2 () =
  Alcotest.(check string) "bbr2" "bbr2" (classify_once "bbr2" 504)

let test_bbr3_lands_unknown_bbr () =
  (* Appendix E: the tool was not tuned for v3 any more than the paper's
     was; what matters is that a v3 sender never passes as v1 or v2 *)
  let label = classify_once "bbr3" 505 in
  Alcotest.(check bool)
    ("bbr3 not mistaken for v1/v2 (got " ^ label ^ ")")
    true
    (label = Nebby.Bbr_classifier.label_unknown_bbr || label = "unknown")

let test_classifies_akamai () =
  Alcotest.(check string) "akamai_cc" "akamai_cc" (classify_once "akamai_cc" 506)

let test_classifies_copa () =
  (* the Copa extension reaches ~88% in the paper; take the best of a few
     seeds rather than depending on one measurement *)
  let labels = List.map (classify_once "copa") [ 507; 607; 707 ] in
  Alcotest.(check bool)
    ("copa recognized in one of three runs: " ^ String.concat "," labels)
    true
    (List.mem "copa" labels)

let test_classifies_over_quic () =
  Alcotest.(check string) "quic bbr" "bbr" (classify_once ~proto:Netsim.Packet.Quic "bbr" 508)

let test_conflicting_verdicts_unknown () =
  let verdicts =
    [ { Nebby.Plugin.label = "cubic"; confidence = 0.8 };
      { Nebby.Plugin.label = "bbr"; confidence = 0.75 } ]
  in
  (match Nebby.Classifier.combine verdicts with
  | Nebby.Classifier.Unknown -> ()
  | Nebby.Classifier.Known l -> Alcotest.fail ("conflict resolved to " ^ l));
  (* a decisively more confident verdict wins *)
  match
    Nebby.Classifier.combine
      [ { Nebby.Plugin.label = "cubic"; confidence = 0.9 };
        { Nebby.Plugin.label = "bbr"; confidence = 0.4 } ]
  with
  | Nebby.Classifier.Known "cubic" -> ()
  | _ -> Alcotest.fail "decisive verdict should win"

let test_empty_verdicts_unknown () =
  match Nebby.Classifier.combine [] with
  | Nebby.Classifier.Unknown -> ()
  | Nebby.Classifier.Known _ -> Alcotest.fail "no verdicts must stay unknown"

let test_measurement_retries_bounded () =
  let control = Lazy.force control in
  let report =
    Nebby.Measurement.measure ~control ~noise:Netsim.Path.heavy ~seed:1
      ~make_cca:(Cca.Registry.create "vivace") ()
  in
  Alcotest.(check bool) "attempts within bound" true
    (report.Nebby.Measurement.attempts >= 1
    && report.Nebby.Measurement.attempts <= Nebby.Measurement.default_config.max_attempts)

(* ---- training ---- *)

let test_training_covers_loss_based () =
  let control = Lazy.force control in
  List.iter
    (fun name ->
      match List.assoc_opt name control.Nebby.Training.samples with
      | Some (_ :: _) -> ()
      | Some [] | None -> Alcotest.fail ("no training samples for " ^ name))
    Cca.Registry.loss_based

let test_training_degree_hist () =
  let control = Lazy.force control in
  List.iter
    (fun name ->
      let d = Nebby.Training.dominant_degree control name in
      Alcotest.(check bool) (name ^ " degree in 1..3") true (d >= 1 && d <= 3))
    Cca.Registry.loss_based

let test_training_coefficient_normality () =
  (* Appendix B applies D'Agostino/Shapiro soft-fail tests to the training
     coefficients. Our per-segment features are rougher than the paper's
     polyfit coefficients (several dimensions are bounded or discrete), so
     this asserts the machinery works and a nontrivial share of
     (class, dimension) pairs look Gaussian, not the paper's all-pass. *)
  let control = Lazy.force control in
  let total = ref 0 and pass = ref 0 in
  List.iter
    (fun (_, vecs) ->
      if List.length vecs >= 8 then begin
        let dims = Array.length (List.hd vecs) in
        for d = 0 to dims - 1 do
          let xs = Array.of_list (List.map (fun v -> v.(d)) vecs) in
          incr total;
          if Sigproc.Stats.normality_soft_pass xs then incr pass
        done
      end)
    control.Nebby.Training.samples;
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d (class, dim) pairs look normal" !pass !total)
    true
    (!total > 50 && !pass * 10 >= !total)

let test_scaler_standardizes () =
  let control = Lazy.force control in
  let bundle = Nebby.Training.bundle_for control Netsim.Packet.Tcp in
  let vec = Array.map fst bundle.Nebby.Training.joint_scaler in
  let out = Nebby.Training.apply_scaler bundle.Nebby.Training.joint_scaler vec in
  Array.iter (fun x -> Alcotest.(check (float 1e-9)) "mean maps to 0" 0.0 x) out

(* report_metrics must flatten degenerate reports too: an all-unknown
   report without provenance omits exactly its confidence/margin cells,
   never crashes or pads them *)
let test_report_metrics_edge_cases () =
  let report =
    {
      Nebby.Measurement.label = "unknown";
      attempts = 3;
      per_profile = [];
      failures = [ Nebby.Measurement.Timeout; Nebby.Measurement.Low_confidence ];
      backoff_total = 1.25;
      provenance = None;
      flight = None;
    }
  in
  Alcotest.(check (list (pair string (float 1e-9))))
    "unknown verdict flattens without provenance cells"
    [ ("attempts", 3.0); ("failures", 2.0); ("backoff_s", 1.25) ]
    (Nebby.Measurement.report_metrics report);
  let provenance =
    Obs.Provenance.make ~subject:"cubic" ~label:"cubic" ~confidence:0.8 ~margin:1.5
      ~features:[] ~stages:[] ~candidates:[]
  in
  let report =
    {
      report with
      Nebby.Measurement.label = "cubic";
      failures = [];
      provenance = Some provenance;
    }
  in
  Alcotest.(check (list (pair string (float 1e-9))))
    "provenance appends confidence and margin in fixed order"
    [
      ("attempts", 3.0); ("failures", 0.0); ("backoff_s", 1.25); ("confidence", 0.8);
      ("margin", 1.5);
    ]
    (Nebby.Measurement.report_metrics report)

let suite =
  [
    Alcotest.test_case "profile constants match the paper" `Quick test_profile_constants;
    Alcotest.test_case "profile pair is ordered by delay" `Quick test_profile_pair_distinct;
    Alcotest.test_case "TCP BiF estimate tracks ground truth" `Quick test_tcp_bif_accuracy;
    Alcotest.test_case "QUIC BiF estimate tracks ground truth" `Quick test_quic_bif_accuracy;
    Alcotest.test_case "BiF estimates never go negative" `Quick test_bif_nonnegative;
    Alcotest.test_case "added delay improves BiF accuracy (Fig 3)" `Slow
      test_bif_accuracy_improves_with_delay;
    Alcotest.test_case "retransmissions are corrected" `Quick test_retransmission_correction;
    Alcotest.test_case "pipeline segments a sawtooth" `Quick test_pipeline_segments_sawtooth;
    Alcotest.test_case "flat traces yield one segment" `Quick test_pipeline_flat_trace_single_segment;
    Alcotest.test_case "smoothing attenuates sub-RTT noise" `Quick
      test_pipeline_smoothing_removes_fast_noise;
    Alcotest.test_case "segments carry sane values" `Quick test_segment_values_positive;
    Alcotest.test_case "linear segments fit degree 1" `Quick test_features_of_linear_segment;
    Alcotest.test_case "cubic segments fit degree 3" `Quick test_features_of_cubic_segment;
    Alcotest.test_case "feature vectors have the advertised size" `Quick
      test_feature_vector_dimensions;
    Alcotest.test_case "classifies cubic end to end" `Slow test_classifies_cubic;
    Alcotest.test_case "classifies bbr end to end" `Slow test_classifies_bbr;
    Alcotest.test_case "classifies vegas end to end" `Slow test_classifies_vegas;
    Alcotest.test_case "classifies bbr2 end to end" `Slow test_classifies_bbr2;
    Alcotest.test_case "bbr3 detected as a BBR-like unknown" `Slow test_bbr3_lands_unknown_bbr;
    Alcotest.test_case "classifies akamai_cc via its plugin" `Slow test_classifies_akamai;
    Alcotest.test_case "classifies copa via its plugin" `Slow test_classifies_copa;
    Alcotest.test_case "classifies bbr over QUIC" `Slow test_classifies_over_quic;
    Alcotest.test_case "conflicting verdicts stay unknown" `Quick test_conflicting_verdicts_unknown;
    Alcotest.test_case "no verdicts stay unknown" `Quick test_empty_verdicts_unknown;
    Alcotest.test_case "measurement retries stay within 5" `Slow test_measurement_retries_bounded;
    Alcotest.test_case "report metrics survive degenerate reports" `Quick
      test_report_metrics_edge_cases;
    Alcotest.test_case "training covers every loss-based CCA" `Slow test_training_covers_loss_based;
    Alcotest.test_case "dominant fit degrees are in range" `Slow test_training_degree_hist;
    Alcotest.test_case "coefficients look normal (App. B)" `Slow test_training_coefficient_normality;
    Alcotest.test_case "the scaler standardizes its own mean" `Slow test_scaler_standardizes;
  ]
