(* The drift observatory: the CUSUM change-point detector's acceptance
   contract (exactly one Migration within 3 epochs of a seeded
   CUBIC→BBR onset; zero events on a stationary population), ledger and
   event JSON byte-stability with schema-version gating, the
   time-varying population's invariants, the journal→ledger builder,
   and the alert engine's fire/resolve dedup. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Ground-truth ledger: class shares read straight off the synthetic
   population's Ohio deployments — no measurement, so the only movement
   is the migration schedule itself. *)
let truth_point ~epoch sites =
  let tally = Hashtbl.create 16 in
  List.iter
    (fun (site : Internet.Website.t) ->
      let label =
        Option.value ~default:"cubic"
          (List.assoc_opt Internet.Region.Ohio site.Internet.Website.deployments)
      in
      let cls = Internet.Census_history.class_of_label label in
      Hashtbl.replace tally cls
        (1 + Option.value ~default:0 (Hashtbl.find_opt tally cls)))
    sites;
  let hosts = List.length sites in
  let pct n = 100.0 *. float_of_int n /. float_of_int (max 1 hosts) in
  {
    Obs.Drift.epoch;
    hosts;
    shares = Hashtbl.fold (fun c n acc -> (c, pct n) :: acc) tally [];
    unknown_share = 0.0;
    mean_confidence = 1.0;
    mean_margin = 5.0;
    timeouts = 0;
  }

let truth_ledger ?migration ~epochs ~n ~seed () =
  Obs.Drift.make ~subject:"truth"
    (List.init epochs (fun epoch ->
         let sites =
           match migration with
           | None -> Internet.Population.generate ~n ~seed ()
           | Some m ->
             Internet.Population.generate_at ~n ~seed ~migration:m ~epoch ()
         in
         truth_point ~epoch sites))

let migration = Internet.Population.default_migration

(* ---- detector acceptance ---- *)

let test_stationary_zero_events () =
  let l = truth_ledger ~epochs:10 ~n:64 ~seed:7 () in
  Alcotest.(check int) "no drift events on a stationary population" 0
    (List.length (Obs.Drift.detect l))

let test_migration_exactly_one_event () =
  let l = truth_ledger ~migration ~epochs:10 ~n:64 ~seed:7 () in
  match Obs.Drift.detect l with
  | [ Obs.Drift.Migration { from_; to_; epoch; rate_per_epoch } ] ->
    Alcotest.(check string) "donor class" "CUBIC" from_;
    Alcotest.(check string) "recipient class" "BBRv1" to_;
    Alcotest.(check bool)
      (Printf.sprintf "alarm epoch %d within 3 of onset %d" epoch migration.onset)
      true
      (epoch >= migration.onset && epoch <= migration.onset + 3);
    Alcotest.(check bool) "positive rate" true (rate_per_epoch > 0.0)
  | events ->
    Alcotest.failf "expected exactly one Migration, got [%s]"
      (String.concat "; " (List.map Obs.Drift.event_label events))

let test_detector_prefix_stable () =
  (* the serve loop detects on each ledger prefix; prefix alarms must
     agree with the full-ledger pass *)
  let l = truth_ledger ~migration ~epochs:10 ~n:64 ~seed:7 () in
  let full = Obs.Drift.detect l in
  List.iter
    (fun k ->
      let prefix =
        Obs.Drift.make ~subject:l.Obs.Drift.subject
          (List.filteri (fun i _ -> i < k) l.Obs.Drift.points)
      in
      let expected =
        List.filter
          (fun e ->
            match List.filteri (fun i _ -> i < k) l.Obs.Drift.points with
            | [] -> false
            | ps -> Obs.Drift.event_epoch e <= (List.nth ps (k - 1)).Obs.Drift.epoch)
          full
      in
      Alcotest.(check (list string))
        (Printf.sprintf "prefix %d events agree" k)
        (List.map Obs.Drift.event_label expected)
        (List.map Obs.Drift.event_label (Obs.Drift.detect prefix)))
    [ 2; 4; 6; 8; 10 ]

let test_emerged_and_collapsed () =
  (* hand-built series: one class ramps from nothing with no donor
     (Emerged), one drains with no recipient (Collapsed) *)
  let mk epoch shares =
    {
      Obs.Drift.epoch;
      hosts = 100;
      shares;
      unknown_share = 0.0;
      mean_confidence = 1.0;
      mean_margin = 5.0;
      timeouts = 0;
    }
  in
  let emerged =
    Obs.Drift.make ~subject:"emerged"
      (List.init 6 (fun e ->
           mk e [ ("CUBIC", 60.0); ("AkamaiCC", 4.0 *. float_of_int e) ]))
  in
  (match Obs.Drift.detect emerged with
  | [ Obs.Drift.Emerged { class_ = "AkamaiCC"; _ } ] -> ()
  | es ->
    Alcotest.failf "expected one Emerged, got [%s]"
      (String.concat "; " (List.map Obs.Drift.event_label es)));
  let collapsed =
    Obs.Drift.make ~subject:"collapsed"
      (List.init 6 (fun e ->
           mk e [ ("CUBIC", 60.0); ("Vegas", 20.0 -. (4.0 *. float_of_int e)) ]))
  in
  match Obs.Drift.detect collapsed with
  | [ Obs.Drift.Collapsed { class_ = "Vegas"; _ } ] -> ()
  | es ->
    Alcotest.failf "expected one Collapsed, got [%s]"
      (String.concat "; " (List.map Obs.Drift.event_label es))

let test_unclassified_never_alarms () =
  let mk epoch unknown =
    {
      Obs.Drift.epoch;
      hosts = 100;
      shares = [ ("CUBIC", 100.0 -. unknown); ("Unclassified", unknown) ];
      unknown_share = unknown;
      mean_confidence = 1.0;
      mean_margin = 5.0;
      timeouts = 0;
    }
  in
  (* unknown mass ramps hard; CUBIC's mirror loss alarms Collapsed but
     nothing may ever emerge into (or migrate to) Unclassified *)
  let l =
    Obs.Drift.make ~subject:"unknowns"
      (List.init 6 (fun e -> mk e (6.0 *. float_of_int e)))
  in
  List.iter
    (function
      | Obs.Drift.Emerged { class_; _ } | Obs.Drift.Migration { to_ = class_; _ } ->
        Alcotest.(check bool) "never alarms on Unclassified" false
          (class_ = "Unclassified")
      | Obs.Drift.Collapsed _ -> ())
    (Obs.Drift.detect l)

(* ---- ledger serialization ---- *)

let test_ledger_json_round_trip () =
  let l = truth_ledger ~migration ~epochs:5 ~n:32 ~seed:3 () in
  let once = Obs.Json.to_string (Obs.Drift.to_json l) in
  let again =
    Obs.Json.to_string (Obs.Drift.to_json (Obs.Drift.of_json (Obs.Json.of_string once)))
  in
  Alcotest.(check string) "serialize-parse-serialize byte identical" once again;
  List.iter
    (fun e ->
      let j = Obs.Json.to_string (Obs.Drift.event_to_json e) in
      let back =
        Obs.Json.to_string
          (Obs.Drift.event_to_json (Obs.Drift.event_of_json (Obs.Json.of_string j)))
      in
      Alcotest.(check string) "event round-trips" j back)
    (Obs.Drift.detect l)

let test_ledger_version_gate () =
  let l = truth_ledger ~epochs:2 ~n:8 ~seed:1 () in
  let j = Obs.Drift.to_json l in
  let skewed =
    match j with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj
        (List.map
           (function "version", _ -> ("version", Obs.Json.Num 99.0) | kv -> kv)
           fields)
    | _ -> Alcotest.fail "ledger json not an object"
  in
  match Obs.Drift.of_json skewed with
  | exception Obs.Drift.Version_mismatch { expected; got } ->
    Alcotest.(check int) "expected version" Obs.Drift.schema_version expected;
    Alcotest.(check int) "got skewed version" 99 got
  | _ -> Alcotest.fail "version skew must raise"

(* ---- time-varying population ---- *)

let test_generate_at_invariants () =
  let n = 64 and seed = 7 in
  let base = Internet.Population.generate ~n ~seed () in
  let at e = Internet.Population.generate_at ~n ~seed ~migration ~epoch:e () in
  (* before onset: byte-equal to the stationary population *)
  Alcotest.(check bool) "pre-onset epochs equal generate" true
    (at 0 = base && at (migration.onset - 1) = base);
  (* identity is stable: rank/name/cdn/noise never change *)
  List.iter2
    (fun (a : Internet.Website.t) (b : Internet.Website.t) ->
      Alcotest.(check bool) "site identity stable" true
        (a.rank = b.rank && a.name = b.name && a.cdn = b.cdn
        && a.noise_factor = b.noise_factor && a.page_bytes = b.page_bytes))
    base (at 8);
  (* conversion is monotone: the donor count never grows with epoch *)
  let donors sites =
    List.length
      (List.filter
         (fun (s : Internet.Website.t) ->
           List.exists (fun (_, c) -> c = migration.from_cca) s.deployments)
         sites)
  in
  let counts = List.init 10 (fun e -> donors (at e)) in
  List.iteri
    (fun i c ->
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "donor count non-increasing at epoch %d" i)
          true
          (c <= List.nth counts (i - 1)))
    counts;
  Alcotest.(check bool) "migration actually converts sites" true
    (donors (at 9) < donors base);
  (* weights_at conserves total mass *)
  let total ws = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 ws in
  Alcotest.(check (float 1e-9)) "weights_at conserves mass"
    (total Internet.Population.base_weights)
    (total (Internet.Population.weights_at migration ~epoch:6))

let test_migration_spec_round_trip () =
  (match Internet.Population.migration_of_spec "cubic:bbr:2:4" with
  | Some m ->
    Alcotest.(check string) "spec round-trips" "cubic:bbr:2:4"
      (Internet.Population.migration_spec m)
  | None -> Alcotest.fail "valid spec rejected");
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" bad)
        true
        (Internet.Population.migration_of_spec bad = None))
    [ ""; "cubic:bbr"; "cubic:cubic:2:4"; "cubic:bbr:-1:4"; "cubic:bbr:2:0"; ":bbr:2:4" ]

(* ---- journal -> ledger builder ---- *)

let test_epoch_of_key () =
  Alcotest.(check (option int)) "verdict key" (Some 3)
    (Serve.Observatory.epoch_of_key "e3|1:site|ohio|tcp|fp");
  Alcotest.(check (option int)) "snapshot key skipped" None
    (Serve.Observatory.epoch_of_key "snapshot|e3");
  Alcotest.(check (option int)) "garbage" None (Serve.Observatory.epoch_of_key "zz");
  Alcotest.(check (option int)) "no epoch digits" None
    (Serve.Observatory.epoch_of_key "e|x")

let verdict ?(label = "cubic") ?(confidence = 0.95) ?(failures = []) () =
  Obs.Json.to_string
    (Obs.Json.Obj
       [
         ("label", Obs.Json.Str label);
         ("confidence", Obs.Json.Num confidence);
         ("margin", Obs.Json.Num 3.0);
         ("attempts", Obs.Json.Num 1.0);
         ("failures", Obs.Json.Arr (List.map (fun f -> Obs.Json.Str f) failures));
       ])

let test_point_of_values () =
  let values =
    [
      verdict ();
      verdict ~label:"bbr" ();
      verdict ~label:"unknown" ~confidence:0.0
        ~failures:[ "timeout"; "timeout" ] ();
      verdict ~label:"akamai_cc" ();
    ]
  in
  let p = Serve.Observatory.point_of_values ~epoch:2 values in
  Alcotest.(check int) "hosts" 4 p.Obs.Drift.hosts;
  Alcotest.(check int) "timeouts counted" 1 p.Obs.Drift.timeouts;
  Alcotest.(check (float 1e-9)) "unknown share" 25.0 p.Obs.Drift.unknown_share;
  Alcotest.(check (float 1e-9)) "cubic share" 25.0 (Obs.Drift.share p "CUBIC");
  Alcotest.(check (float 1e-9)) "akamai share" 25.0 (Obs.Drift.share p "AkamaiCC");
  Alcotest.(check (float 1e-9)) "mean confidence" ((0.95 +. 0.95 +. 0.0 +. 0.95) /. 4.0)
    p.Obs.Drift.mean_confidence;
  (* unreadable records fail towards unknown, not towards a crash *)
  let p2 = Serve.Observatory.point_of_values ~epoch:0 [ "{not json" ] in
  Alcotest.(check (float 1e-9)) "garbage counts as unknown" 100.0
    p2.Obs.Drift.unknown_share

let test_ledger_of_store () =
  let path = Filename.temp_file "drift" ".journal" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let j = Engine.Journal.open_ path in
      Engine.Journal.put j ~key:"e0|1:a|ohio|tcp|fp" ~value:(verdict ());
      Engine.Journal.put j ~key:"e0|2:b|ohio|tcp|fp" ~value:(verdict ~label:"bbr" ());
      Engine.Journal.put j ~key:"e1|1:a|ohio|tcp|fp" ~value:(verdict ~label:"bbr" ());
      Engine.Journal.put j ~key:"snapshot|e0" ~value:"{}";
      Engine.Journal.close j;
      let l = Serve.Observatory.ledger_of_store ~store:path in
      Alcotest.(check int) "two epochs" 2 (List.length l.Obs.Drift.points);
      match l.Obs.Drift.points with
      | [ p0; p1 ] ->
        Alcotest.(check int) "epoch 0 hosts" 2 p0.Obs.Drift.hosts;
        Alcotest.(check (float 1e-9)) "epoch 0 cubic" 50.0 (Obs.Drift.share p0 "CUBIC");
        Alcotest.(check int) "epoch 1 hosts" 1 p1.Obs.Drift.hosts;
        Alcotest.(check (float 1e-9)) "epoch 1 bbr" 100.0 (Obs.Drift.share p1 "BBRv1")
      | _ -> Alcotest.fail "expected two points")

(* ---- alert engine ---- *)

let signal_fn values s =
  Option.value ~default:0.0 (List.assoc_opt (Serve.Alerts.signal_name s) values)

let test_alert_fire_resolve_dedup () =
  let rules =
    [
      {
        Serve.Alerts.name = "unknown-share";
        signal = Serve.Alerts.Unknown_share;
        bound = Serve.Alerts.Ceiling;
        limit = 40.0;
        for_epochs = 1;
      };
    ]
  in
  let eng = Serve.Alerts.create rules in
  let eval epoch unknown =
    Serve.Alerts.evaluate eng ~epoch
      ~signal_value:(signal_fn [ ("unknown_share", unknown) ])
  in
  Alcotest.(check int) "quiet epoch: no edge" 0 (List.length (eval 0 10.0));
  (match eval 1 55.0 with
  | [ { Serve.Alerts.action = Serve.Alerts.Fire; rule = "unknown-share"; epoch = 1; _ } ]
    ->
    ()
  | _ -> Alcotest.fail "expected a fire edge");
  Alcotest.(check int) "still breached: deduplicated" 0 (List.length (eval 2 60.0));
  (match eval 3 10.0 with
  | [ { Serve.Alerts.action = Serve.Alerts.Resolve; epoch = 3; _ } ] -> ()
  | _ -> Alcotest.fail "expected a resolve edge");
  Alcotest.(check int) "quiet again: nothing" 0 (List.length (eval 4 10.0));
  Alcotest.(check (list (pair string bool))) "final state quiet"
    [ ("unknown-share", false) ]
    (Serve.Alerts.firing eng)

let test_alert_for_epochs_streak () =
  let rules =
    [
      {
        Serve.Alerts.name = "conf";
        signal = Serve.Alerts.Mean_confidence;
        bound = Serve.Alerts.Floor;
        limit = 0.5;
        for_epochs = 2;
      };
    ]
  in
  let eng = Serve.Alerts.create rules in
  let eval epoch c =
    Serve.Alerts.evaluate eng ~epoch
      ~signal_value:(signal_fn [ ("mean_confidence", c) ])
  in
  Alcotest.(check int) "first breach below streak" 0 (List.length (eval 0 0.3));
  (* breach interrupted: streak resets *)
  Alcotest.(check int) "recovery resets streak" 0 (List.length (eval 1 0.9));
  Alcotest.(check int) "breach 1/2" 0 (List.length (eval 2 0.3));
  Alcotest.(check int) "breach 2/2 fires" 1 (List.length (eval 3 0.3))

let test_alert_rules_json_and_gauges () =
  let rules = Serve.Alerts.default_rules in
  let once = Obs.Json.to_string (Serve.Alerts.rules_to_json rules) in
  let again =
    Obs.Json.to_string
      (Serve.Alerts.rules_to_json (Serve.Alerts.rules_of_json (Obs.Json.of_string once)))
  in
  Alcotest.(check string) "rules round-trip byte identical" once again;
  (* version gate *)
  (match
     Serve.Alerts.rules_of_json
       (Obs.Json.Obj
          [
            ("kind", Obs.Json.Str "nebby_alert_rules");
            ("version", Obs.Json.Num 42.0);
            ("rules", Obs.Json.Arr []);
          ])
   with
  | exception Serve.Alerts.Version_mismatch { got = 42; _ } -> ()
  | _ -> Alcotest.fail "rules version skew must raise");
  (* transitions round-trip *)
  let tr =
    {
      Serve.Alerts.epoch = 4;
      rule = "drift-rate";
      action = Serve.Alerts.Fire;
      value = 4.25;
      limit = 2.5;
    }
  in
  let j = Obs.Json.to_string (Serve.Alerts.transition_to_json tr) in
  Alcotest.(check string) "transition round-trips" j
    (Obs.Json.to_string
       (Serve.Alerts.transition_to_json
          (Serve.Alerts.transition_of_json (Obs.Json.of_string j))));
  (* gauges expose every rule with HELP/TYPE *)
  let g = Serve.Alerts.gauges (Serve.Alerts.create rules) in
  Alcotest.(check bool) "gauges carry HELP" true (contains ~needle:"# HELP nebby_alert" g);
  Alcotest.(check bool) "gauges carry TYPE" true (contains ~needle:"# TYPE nebby_alert" g);
  List.iter
    (fun (r : Serve.Alerts.rule) ->
      Alcotest.(check bool)
        (Printf.sprintf "gauge for %s" r.Serve.Alerts.name)
        true
        (contains ~needle:(Printf.sprintf "nebby_alert{rule=\"%s\"} 0" r.Serve.Alerts.name) g))
    rules

(* ---- rendering ---- *)

let test_render_and_dashboard_deterministic () =
  let l = truth_ledger ~migration ~epochs:8 ~n:48 ~seed:5 () in
  let events = Obs.Drift.detect l in
  let text = Obs.Drift.render l events in
  Alcotest.(check string) "text render pure" text (Obs.Drift.render l events);
  Alcotest.(check bool) "render names the events" true (contains ~needle:"migration" text);
  let historical =
    List.map
      (fun (s : Internet.Census_history.snapshot) -> (s.study, s.year, s.shares))
      Internet.Census_history.historical
  in
  let alerts = [ (4, "drift-rate", `Fire, 4.2, 2.5) ] in
  let html = Obs.Render.drift_dashboard ~historical ~alerts ~ledger:l ~events () in
  Alcotest.(check string) "dashboard byte-identical" html
    (Obs.Render.drift_dashboard ~historical ~alerts ~ledger:l ~events ());
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "dashboard mentions %s" needle) true
        (contains ~needle html))
    [ "nebby drift observatory"; "CUBIC"; "Gordon [50]"; "drift-rate"; "<svg" ];
  (* empty ledger degrades to a note instead of charts *)
  let empty = Obs.Drift.make ~subject:"empty" [] in
  Alcotest.(check bool) "empty ledger renders a note" true
    (contains ~needle:"empty ledger"
       (Obs.Render.drift_dashboard ~ledger:empty ~events:[] ()))

let suite =
  [
    Alcotest.test_case "stationary population: zero events" `Quick
      test_stationary_zero_events;
    Alcotest.test_case "seeded migration: exactly one Migration within 3 epochs" `Quick
      test_migration_exactly_one_event;
    Alcotest.test_case "detector is prefix-stable" `Quick test_detector_prefix_stable;
    Alcotest.test_case "unpaired trends emerge and collapse" `Quick
      test_emerged_and_collapsed;
    Alcotest.test_case "Unclassified never alarms" `Quick test_unclassified_never_alarms;
    Alcotest.test_case "ledger and event JSON round-trip byte identity" `Quick
      test_ledger_json_round_trip;
    Alcotest.test_case "ledger schema version gate" `Quick test_ledger_version_gate;
    Alcotest.test_case "generate_at: stable identity, monotone conversion" `Quick
      test_generate_at_invariants;
    Alcotest.test_case "migration spec parse/print round-trip" `Quick
      test_migration_spec_round_trip;
    Alcotest.test_case "observatory epoch key parsing" `Quick test_epoch_of_key;
    Alcotest.test_case "observatory point statistics" `Quick test_point_of_values;
    Alcotest.test_case "observatory ledger from a journal store" `Quick
      test_ledger_of_store;
    Alcotest.test_case "alerts fire/resolve edges deduplicated" `Quick
      test_alert_fire_resolve_dedup;
    Alcotest.test_case "alerts for_epochs breach streak" `Quick
      test_alert_for_epochs_streak;
    Alcotest.test_case "alert rules/transitions JSON + gauges" `Quick
      test_alert_rules_json_and_gauges;
    Alcotest.test_case "drift render + dashboard deterministic" `Quick
      test_render_and_dashboard_deterministic;
  ]
