(* Adversarial-search suite: the lib/search contracts (every mutation
   valid and serializable, the search a pure function of its seed at any
   worker count, the minimizer unable to emit a non-reproducing result)
   plus the regression harness that replays every committed fixture under
   test/adversarial/. A fixture that stops reproducing fails loudly here
   — including the happy case where the underlying bug was fixed, which
   asks for the fixture to be removed or regenerated, never silently
   dropped. *)

let fixture_dir =
  List.find_opt Sys.file_exists [ "adversarial"; "test/adversarial" ]

(* One control per training configuration, shared between the search
   tests and the fixture replay harness (fixtures pin their own training
   triple; the search tests use the fuzzer default, which matches the
   committed fixtures, so the model trains once). *)
let controls : (int * int * int, Nebby.Training.control) Hashtbl.t = Hashtbl.create 4

let control_for_key ((runs, quic_runs, seed) as key) =
  match Hashtbl.find_opt controls key with
  | Some c -> c
  | None ->
    let c = Nebby.Training.train ~runs_per_cca:runs ~quic_runs_per_cca:quic_runs ~seed () in
    Hashtbl.add controls key c;
    c

let search_control =
  lazy
    (let d = Search.Fuzzer.default_config in
     control_for_key
       (d.Search.Fuzzer.training_runs, d.Search.Fuzzer.training_quic_runs,
        d.Search.Fuzzer.training_seed))

(* ---- genome properties ---- *)

let test_mutations_valid_and_round_trip () =
  let ccas = [ "cubic"; "vegas"; "bbr" ] in
  for seed = 1 to 200 do
    let rng = Netsim.Rng.create seed in
    let g = ref (Search.Genome.baseline ~cca:"cubic" ~seed) in
    for _ = 1 to 1 + (seed mod 4) do
      g := Search.Genome.mutate ~rng ~ccas !g
    done;
    (match Search.Genome.validate !g with
    | Ok () -> ()
    | Error e ->
      Alcotest.failf "seed %d: mutated genome invalid: %s (%s)" seed e
        (Search.Genome.to_string !g));
    let s = Search.Genome.to_string !g in
    match Search.Genome.of_json (Obs.Json.of_string s) with
    | Error e -> Alcotest.failf "seed %d: genome does not parse back: %s" seed e
    | Ok g' ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d round-trips byte-identically" seed)
        s
        (Search.Genome.to_string g');
      if not (Search.Genome.equal !g g') then
        Alcotest.failf "seed %d: round-tripped genome differs structurally" seed
  done

let test_chaos_suite_imports_valid () =
  List.iter
    (fun (family, plan) ->
      let g = Search.Genome.of_plan ~cca:"cubic" plan in
      match Search.Genome.validate g with
      | Ok () -> ()
      | Error e -> Alcotest.failf "chaos family %s imports invalid: %s" family e)
    (Nebby.Chaos.standard_suite ~seed:42 ())

(* ---- minimizer properties ---- *)

let test_ddmin_finds_single_culprit () =
  let input = List.init 20 (fun i -> i + 1) in
  let reduced, steps = Search.Minimize.ddmin ~keep:(List.mem 13) input in
  Alcotest.(check (list int)) "isolates the culprit" [ 13 ] reduced;
  if steps <= 0 then Alcotest.fail "ddmin reported no evaluation steps"

let test_ddmin_result_is_one_minimal () =
  let keep xs = List.length (List.filter (fun x -> x mod 2 = 0) xs) >= 3 in
  let input = List.init 12 (fun i -> i + 1) in
  let reduced, _ = Search.Minimize.ddmin ~keep input in
  if not (keep reduced) then Alcotest.fail "reduced list no longer satisfies keep";
  List.iteri
    (fun i _ ->
      let without = List.filteri (fun j _ -> j <> i) reduced in
      if keep without then
        Alcotest.failf "not 1-minimal: element %d of %d is removable" i
          (List.length reduced))
    reduced

let test_ddmin_trivial_predicate_reaches_empty () =
  let reduced, _ = Search.Minimize.ddmin ~keep:(fun _ -> true) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "always-true predicate minimizes to []" [] reduced

let test_minimize_rejects_non_reproducing () =
  let g = Search.Genome.baseline ~cca:"cubic" ~seed:1 in
  match Search.Minimize.genome ~keep:(fun _ -> false) g with
  | None -> ()
  | Some _ -> Alcotest.fail "minimizer accepted a genome its keep predicate rejects"

let test_minimize_result_satisfies_keep () =
  let specs =
    [
      Faults.Link_flap { at = 5.0; duration = 1.0 };
      Faults.Rate_change { at = 10.0; factor = 0.5 };
      Faults.Server_stall { at = 15.0; duration = 1.0 };
      Faults.Capture_jitter { std = 0.002 };
      Faults.Flow_reset { at = 30.0 };
    ]
  in
  let g = Search.Genome.of_plan ~cca:"cubic" { Faults.seed = 5; specs } in
  let keep (g : Search.Genome.t) = List.length g.Search.Genome.faults.Faults.specs >= 2 in
  match Search.Minimize.genome ~keep g with
  | None -> Alcotest.fail "minimizer rejected a reproducing genome"
  | Some { Search.Minimize.genome = reduced; steps } ->
    if not (keep reduced) then Alcotest.fail "minimized genome violates keep";
    Alcotest.(check int)
      "spec list reduced to the predicate's minimum" 2
      (List.length reduced.Search.Genome.faults.Faults.specs);
    if steps <= 0 then Alcotest.fail "minimizer reported no steps"

(* ---- fixture schema ---- *)

let sample_fixture () =
  let rng = Netsim.Rng.create 11 in
  let g =
    Search.Genome.mutate ~rng (Search.Genome.baseline ~cca:"vegas" ~seed:11)
  in
  Search.Fixture.make ~name:"sample" ~genome:g ~got:"vivace"
    ~verdict_class:Search.Fixture.Misclassified ~confidence:0.9 ~margin:1.5
    ~failures:[ "low_confidence" ] ~signature:"vegas|vivace|fail:|cand:vivace|fl:bif:4"
    ~flight_kinds:[ ("bif", 12); ("stage", 4) ]
    ~training_runs:3 ~training_quic_runs:2 ~training_seed:7 ~max_attempts:2
    ~confidence_floor:0.6 ~margin_floor:0.5 ~search_seed:42 ~search_budget:64 ~found_at:9
    ~minimize_steps:3 ~original_specs:4

let test_fixture_round_trips () =
  let f = sample_fixture () in
  let s = Search.Fixture.to_string f in
  match Search.Fixture.of_string s with
  | Error e -> Alcotest.failf "fixture does not parse back: %s" e
  | Ok f' ->
    Alcotest.(check string) "byte-identical round trip" s (Search.Fixture.to_string f');
    Alcotest.(check string) "label survives" f.Search.Fixture.got f'.Search.Fixture.got

let test_fixture_version_gate () =
  let f = sample_fixture () in
  let skewed =
    match Obs.Json.of_string (Search.Fixture.to_string f) with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj
        (List.map
           (function
             | "version", _ -> ("version", Obs.Json.Num 999.0)
             | kv -> kv)
           fields)
    | _ -> Alcotest.fail "fixture is not a JSON object"
  in
  match Search.Fixture.of_string (Obs.Json.to_string skewed) with
  | exception Search.Fixture.Version_mismatch { expected; got } ->
    Alcotest.(check int) "expected version" Search.Fixture.schema_version expected;
    Alcotest.(check int) "skewed version" 999 got
  | Ok _ -> Alcotest.fail "version skew was accepted"
  | Error e -> Alcotest.failf "version skew reported as shape error: %s" e

let test_fixture_rejects_empty_counterexample () =
  match
    Search.Fixture.make ~name:"bad"
      ~genome:(Search.Genome.baseline ~cca:"cubic" ~seed:1)
      ~got:"cubic" ~verdict_class:Search.Fixture.Correct ~confidence:1.0 ~margin:2.0
      ~failures:[] ~signature:"" ~flight_kinds:[] ~training_runs:3 ~training_quic_runs:2
      ~training_seed:7 ~max_attempts:2 ~confidence_floor:0.6 ~margin_floor:0.5
      ~search_seed:1 ~search_budget:1 ~found_at:0 ~minimize_steps:0 ~original_specs:0
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "a correct verdict was accepted as a fixture"

let test_fixture_rejects_invalid_genome () =
  let g = Search.Genome.baseline ~cca:"cubic" ~seed:1 in
  let broken =
    { g with Search.Genome.path = { g.Search.Genome.path with Search.Genome.delay_factor = 99.0 } }
  in
  match
    Search.Fixture.make ~name:"bad" ~genome:broken ~got:"bbr"
      ~verdict_class:Search.Fixture.Misclassified ~confidence:0.5 ~margin:0.5 ~failures:[]
      ~signature:"" ~flight_kinds:[] ~training_runs:3 ~training_quic_runs:2
      ~training_seed:7 ~max_attempts:2 ~confidence_floor:0.6 ~margin_floor:0.5
      ~search_seed:1 ~search_budget:1 ~found_at:0 ~minimize_steps:0 ~original_specs:0
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "an out-of-box genome was accepted as a fixture"

(* ---- search determinism ---- *)

let result_digest (r : Search.Fuzzer.result) =
  let corpus_lines =
    List.map
      (fun (signature, fitness, g) ->
        Printf.sprintf "%s %.9f %s" signature fitness (Search.Genome.to_string g))
      r.Search.Fuzzer.corpus
  in
  let fixture_lines =
    List.map
      (fun { Search.Fuzzer.fixture; _ } -> Search.Fixture.to_string fixture)
      r.Search.Fuzzer.findings
  in
  String.concat "\n"
    ((Printf.sprintf "evals=%d min=%d" r.Search.Fuzzer.evals r.Search.Fuzzer.minimize_evals
     :: corpus_lines)
    @ fixture_lines)

let test_search_deterministic_across_jobs () =
  let control = Lazy.force search_control in
  let config =
    {
      Search.Fuzzer.default_config with
      Search.Fuzzer.budget = 10;
      batch = 4;
      targets = [ "cubic"; "vegas" ];
    }
  in
  let run jobs =
    result_digest
      (Search.Fuzzer.run ~control ~config:{ config with Search.Fuzzer.jobs } ~seed:42 ())
  in
  let serial = run 1 in
  Alcotest.(check string) "same seed reproduces byte-identically" serial (run 1);
  Alcotest.(check string) "jobs=3 matches jobs=1 byte-identically" serial (run 3)

(* ---- committed fixture replay ---- *)

let control_for (f : Search.Fixture.t) =
  control_for_key
    (f.Search.Fixture.training_runs, f.Search.Fixture.training_quic_runs,
     f.Search.Fixture.training_seed)

let test_committed_fixtures_replay () =
  match fixture_dir with
  | None -> Alcotest.fail "test/adversarial fixture directory not found"
  | Some dir ->
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort compare
    in
    if files = [] then
      Alcotest.fail "no committed fixtures — run `nebby fuzz` and commit its output";
    List.iter
      (fun file ->
        let path = Filename.concat dir file in
        match Search.Fixture.load path with
        | exception Search.Fixture.Version_mismatch { expected; got } ->
          Alcotest.failf "%s: schema v%d, this build reads v%d — regenerate it" file got
            expected
        | Error e -> Alcotest.failf "%s: %s" file e
        | Ok fx -> (
          let status, e = Search.Fuzzer.replay ~control:(control_for fx) fx in
          match status with
          | Search.Fuzzer.Reproduced -> ()
          | Search.Fuzzer.Fixed ->
            Alcotest.failf
              "%s: the scenario now classifies correctly — the bug it pinned is fixed; \
               remove the fixture or regenerate with `nebby fuzz`"
              file
          | Search.Fuzzer.Changed ->
            Alcotest.failf
              "%s: verdict drifted — recorded %s/%s, replay got %s/%s (confidence %.3f, \
               margin %.3f)"
              file
              (Search.Fixture.class_label fx.Search.Fixture.verdict_class)
              fx.Search.Fixture.got
              (Search.Fixture.class_label e.Search.Fuzzer.verdict_class)
              e.Search.Fuzzer.got e.Search.Fuzzer.confidence e.Search.Fuzzer.margin))
      files

let suite =
  [
    Alcotest.test_case "200 mutants stay valid and round-trip" `Quick
      test_mutations_valid_and_round_trip;
    Alcotest.test_case "chaos suite imports into valid genomes" `Quick
      test_chaos_suite_imports_valid;
    Alcotest.test_case "ddmin isolates a single culprit" `Quick test_ddmin_finds_single_culprit;
    Alcotest.test_case "ddmin results are 1-minimal" `Quick test_ddmin_result_is_one_minimal;
    Alcotest.test_case "ddmin reaches the empty list" `Quick
      test_ddmin_trivial_predicate_reaches_empty;
    Alcotest.test_case "non-reproducing genomes are rejected" `Quick
      test_minimize_rejects_non_reproducing;
    Alcotest.test_case "minimized genomes satisfy keep" `Quick
      test_minimize_result_satisfies_keep;
    Alcotest.test_case "fixtures round-trip byte-identically" `Quick test_fixture_round_trips;
    Alcotest.test_case "fixture schema version is gated" `Quick test_fixture_version_gate;
    Alcotest.test_case "correct verdicts cannot become fixtures" `Quick
      test_fixture_rejects_empty_counterexample;
    Alcotest.test_case "invalid genomes cannot become fixtures" `Quick
      test_fixture_rejects_invalid_genome;
    Alcotest.test_case "search is seed- and jobs-deterministic" `Slow
      test_search_deterministic_across_jobs;
    Alcotest.test_case "committed fixtures replay" `Slow test_committed_fixtures_replay;
  ]
