let () =
  Alcotest.run "nebby"
    [
      ("netsim", Test_netsim.suite);
      ("sigproc", Test_sigproc.suite);
      ("cca", Test_cca.suite);
      ("transport", Test_transport.suite);
      ("nebby", Test_nebby.suite);
      ("classifiers", Test_classifiers.suite);
      ("internet", Test_internet.suite);
      ("baselines", Test_baselines.suite);
      ("more", Test_more.suite);
      ("obs", Test_obs.suite);
      ("histogram", Test_histogram.suite);
      ("faults", Test_faults.suite);
      ("engine", Test_engine.suite);
      ("golden", Test_golden.suite);
      ("provenance", Test_provenance.suite);
      ("flight", Test_flight.suite);
      ("campaign", Test_campaign.suite);
      ("serve", Test_serve.suite);
      ("drift", Test_drift.suite);
      ("adversarial", Test_adversarial.suite);
    ]
