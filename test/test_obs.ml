(* Tests for the lib/obs telemetry subsystem: metrics correctness, span
   trees, the silent no-sink fast path, JSONL round-trips, and the event
   taxonomy a full measurement emits. *)

let small_control = lazy (Nebby.Training.train ~runs_per_cca:4 ~quic_runs_per_cca:2 ())

(* ---- metrics ---- *)

let test_counter_updates () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "t.counter" in
  for _ = 1 to 10_000 do
    Obs.Metrics.incr c
  done;
  Obs.Metrics.add c 500;
  Alcotest.(check int) "10500 after 10000 incrs + add 500" 10_500 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "same handle via registry" 10_500
    (Obs.Metrics.counter_value (Obs.Metrics.counter "t.counter"))

let test_gauge () =
  Obs.Metrics.reset ();
  let g = Obs.Metrics.gauge "t.gauge" in
  Obs.Metrics.set g 1.5;
  Obs.Metrics.set g 2.5;
  Alcotest.(check (float 1e-9)) "last write wins" 2.5 (Obs.Metrics.gauge_value g)

let check_percentile h q expected =
  let v = Obs.Metrics.percentile h q in
  let rel = Float.abs (v -. expected) /. Float.max 1.0 expected in
  Alcotest.(check bool)
    (Printf.sprintf "p%.0f = %.3f within 5%% of %.3f" (q *. 100.0) v expected)
    true (rel < 0.05)

let test_histogram_uniform () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram "t.uniform" in
  for i = 1 to 1000 do
    Obs.Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Obs.Metrics.histogram_count h);
  Alcotest.(check (float 1.0)) "sum" 500_500.0 (Obs.Metrics.histogram_sum h);
  check_percentile h 0.50 500.0;
  check_percentile h 0.90 900.0;
  check_percentile h 0.99 990.0

let test_histogram_constant () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram "t.constant" in
  for _ = 1 to 50 do
    Obs.Metrics.observe h 5.0
  done;
  check_percentile h 0.50 5.0;
  check_percentile h 0.99 5.0

let test_histogram_bimodal () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram "t.bimodal" in
  (* 90 small values and 10 large ones: p50 must sit in the low mode,
     p99 in the high mode *)
  for _ = 1 to 90 do
    Obs.Metrics.observe h 0.001
  done;
  for _ = 1 to 10 do
    Obs.Metrics.observe h 10.0
  done;
  check_percentile h 0.50 0.001;
  check_percentile h 0.99 10.0

let test_histogram_underflow () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram "t.under" in
  Obs.Metrics.observe h (-1.0);
  Obs.Metrics.observe h 0.0;
  Obs.Metrics.observe h 4.0;
  Alcotest.(check int) "count includes non-positive" 3 (Obs.Metrics.histogram_count h);
  Alcotest.(check (float 0.3)) "p99 in the 4.0 cell" 4.0 (Obs.Metrics.percentile h 0.99)

(* ---- spans ---- *)

let test_span_tree () =
  Obs.Metrics.reset ();
  let completed = ref [] in
  let handle = Obs.Span.on_complete (fun c -> completed := c :: !completed) in
  let result =
    Obs.Span.with_ ~name:"root" (fun () ->
        Obs.Span.with_ ~name:"child1" (fun () -> ());
        Obs.Span.with_ ~name:"child2" (fun () ->
            Obs.Span.with_ ~name:"grand" (fun () -> 17)))
  in
  Obs.Span.off handle;
  Alcotest.(check int) "with_ is transparent" 17 result;
  let by_name name =
    match List.find_opt (fun c -> c.Obs.Span.name = name) !completed with
    | Some c -> c
    | None -> Alcotest.fail ("span not recorded: " ^ name)
  in
  let root = by_name "root" and c1 = by_name "child1" in
  let c2 = by_name "child2" and grand = by_name "grand" in
  Alcotest.(check bool) "root has no parent" true (root.Obs.Span.parent_id = None);
  Alcotest.(check int) "root depth" 0 root.Obs.Span.depth;
  Alcotest.(check bool) "child1 under root" true (c1.Obs.Span.parent_id = Some root.Obs.Span.id);
  Alcotest.(check bool) "child2 under root" true (c2.Obs.Span.parent_id = Some root.Obs.Span.id);
  Alcotest.(check bool) "grand under child2" true
    (grand.Obs.Span.parent_id = Some c2.Obs.Span.id);
  Alcotest.(check int) "grand depth" 2 grand.Obs.Span.depth;
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (c.Obs.Span.name ^ " stop after start")
        true
        (c.Obs.Span.wall_stop >= c.Obs.Span.wall_start))
    !completed;
  (* every span also feeds its duration histogram *)
  match Obs.Metrics.find_histogram "span.root" with
  | Some h -> Alcotest.(check int) "span.root observed once" 1 (Obs.Metrics.histogram_count h)
  | None -> Alcotest.fail "span.root histogram missing"

let test_span_exception () =
  Obs.Metrics.reset ();
  let completed = ref [] in
  let handle = Obs.Span.on_complete (fun c -> completed := c :: !completed) in
  (try Obs.Span.with_ ~name:"boom" (fun () -> failwith "boom") with Failure _ -> ());
  (* the stack must be clean: a sibling span opened afterwards is a root *)
  Obs.Span.with_ ~name:"after" (fun () -> ());
  Obs.Span.off handle;
  let find name = List.find (fun c -> c.Obs.Span.name = name) !completed in
  Alcotest.(check bool) "raised flagged" true (find "boom").Obs.Span.raised;
  Alcotest.(check bool) "sibling is a root" true ((find "after").Obs.Span.parent_id = None)

(* ---- no-sink fast path ---- *)

let test_no_sink_emits_nothing () =
  Obs.Metrics.reset ();
  Alcotest.(check bool) "no subscriber" false (Obs.Events.active ());
  Alcotest.(check bool) "not armed" false (Obs.Runtime.armed ());
  let r = Obs.Span.with_ ~name:"silent" (fun () -> 42) in
  Alcotest.(check int) "span body still runs" 42 r;
  ignore (Nebby.Testbed.run_cca ~profile:Nebby.Profile.delay_50ms ~seed:5 "cubic");
  Alcotest.(check int) "registry untouched by an uninstrumented run" 0
    (List.length (Obs.Metrics.snapshot ()))

let test_armed_run_records () =
  Obs.Metrics.reset ();
  Obs.Runtime.with_armed (fun () ->
      let r = Nebby.Testbed.run_cca ~profile:Nebby.Profile.delay_50ms ~seed:5 "cubic" in
      ignore (Nebby.Measurement.prepare_result ~profile:Nebby.Profile.delay_50ms r));
  Alcotest.(check bool) "disarmed again" false (Obs.Runtime.armed ());
  let counter_value name = Obs.Metrics.counter_value (Obs.Metrics.counter name) in
  Alcotest.(check bool) "sim events counted" true (counter_value "netsim.sim.events" > 0);
  Alcotest.(check bool) "packets counted" true (counter_value "netsim.link.enqueued" > 0);
  (match Obs.Metrics.find_histogram "span.simulate" with
  | Some h ->
    Alcotest.(check int) "one simulate span" 1 (Obs.Metrics.histogram_count h);
    Alcotest.(check bool) "positive duration" true (Obs.Metrics.histogram_sum h > 0.0)
  | None -> Alcotest.fail "span.simulate histogram missing");
  match Obs.Metrics.find_histogram "span.virt.simulate" with
  | Some h ->
    (* the simulated transfer runs to the 60 s time limit *)
    Alcotest.(check bool) "virtual duration ~60 s" true
      (Float.abs (Obs.Metrics.histogram_sum h -. 60.0) < 2.0)
  | None -> Alcotest.fail "span.virt.simulate histogram missing"

(* ---- JSONL round trip ---- *)

let test_jsonl_roundtrip () =
  Obs.Metrics.reset ();
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Obs.Telemetry.record ~jsonl:path (fun () ->
      Obs.Events.emit (Obs.Events.Attempt_started { attempt = 1 });
      Obs.Events.emit
        (Obs.Events.Classifier_vote { plugin = "loss_gnb"; label = "cubic"; confidence = 0.9 });
      Obs.Span.with_ ~name:"stage" (fun () -> ());
      let h = Obs.Metrics.histogram "t.roundtrip" in
      for i = 1 to 100 do
        Obs.Metrics.observe h (float_of_int i)
      done);
  let s = Obs.Telemetry.read_summary path in
  Sys.remove path;
  Alcotest.(check int) "no malformed lines" 0 s.Obs.Telemetry.malformed;
  Alcotest.(check (option int)) "one attempt event" (Some 1)
    (List.assoc_opt "attempt_started" s.Obs.Telemetry.events);
  Alcotest.(check (option int)) "one vote event" (Some 1)
    (List.assoc_opt "classifier_vote" s.Obs.Telemetry.events);
  Alcotest.(check bool) "stage span listed" true
    (List.exists (fun (n, c, _) -> n = "stage" && c = 1) s.Obs.Telemetry.spans);
  match
    List.find_opt
      (function Obs.Metrics.Histogram_snap { name; _ } -> name = "t.roundtrip" | _ -> false)
      s.Obs.Telemetry.metrics
  with
  | Some (Obs.Metrics.Histogram_snap { count; cells; _ }) ->
    Alcotest.(check int) "histogram count survives" 100 count;
    let p50 = Obs.Metrics.percentile_of_cells cells 0.50 in
    Alcotest.(check bool) "p50 reconstructable offline" true
      (Float.abs (p50 -. 50.0) /. 50.0 < 0.05)
  | _ -> Alcotest.fail "t.roundtrip histogram not found in summary"

let test_json_parser () =
  let j = Obs.Json.of_string {|{"kind":"x","n":1.5,"s":"a\"b","l":[1,2,null,true]}|} in
  Alcotest.(check (option string)) "string member" (Some "a\"b")
    (Option.bind (Obs.Json.member "s" j) Obs.Json.to_str);
  Alcotest.(check (option (float 1e-9))) "number member" (Some 1.5)
    (Option.bind (Obs.Json.member "n" j) Obs.Json.to_float);
  (match Option.bind (Obs.Json.member "l" j) Obs.Json.to_list with
  | Some l -> Alcotest.(check int) "list length" 4 (List.length l)
  | None -> Alcotest.fail "list member missing");
  Alcotest.check_raises "trailing garbage rejected"
    (Obs.Json.Parse_error "trailing garbage at offset 3") (fun () ->
      ignore (Obs.Json.of_string "{} x"))

(* ---- string escaping: control chars, non-ASCII, \u escapes ---- *)

let test_json_string_escaping () =
  (* every single-byte string must round trip byte-for-byte, and the
     encoded form must never contain a raw control character *)
  for b = 0 to 255 do
    let s = String.make 1 (Char.chr b) in
    let encoded = Obs.Json.to_string (Obs.Json.Str s) in
    String.iter
      (fun c ->
        if Char.code c < 0x20 then
          Alcotest.fail (Printf.sprintf "byte 0x%02x encoded with a raw control char" b))
      encoded;
    match Obs.Json.to_str (Obs.Json.of_string encoded) with
    | Some s' -> Alcotest.(check string) (Printf.sprintf "byte 0x%02x round trips" b) s s'
    | None -> Alcotest.fail (Printf.sprintf "byte 0x%02x did not decode to a string" b)
  done;
  (* multi-byte UTF-8 passes through raw and untouched *)
  let s = "caf\xc3\xa9 \xe2\x96\x88 \xf0\x9f\x94\xa5" in
  Alcotest.(check (option string)) "utf-8 passthrough" (Some s)
    (Obs.Json.to_str (Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Str s))))

let test_json_unicode_escapes () =
  let decode s = Obs.Json.to_str (Obs.Json.of_string s) in
  Alcotest.(check (option string)) "ascii escape" (Some "A") (decode {|"\u0041"|});
  Alcotest.(check (option string)) "2-byte escape" (Some "\xc3\xa9") (decode {|"\u00E9"|});
  Alcotest.(check (option string)) "3-byte escape" (Some "\xe2\x82\xac")
    (decode {|"\u20AC"|});
  Alcotest.(check (option string)) "surrogate pair -> 4-byte scalar"
    (Some "\xf0\x9f\x98\x80")
    (decode {|"\uD83D\uDE00"|});
  Alcotest.(check (option string)) "unpaired high surrogate -> U+FFFD"
    (Some "\xef\xbf\xbdx")
    (decode {|"\uD83Dx"|});
  Alcotest.(check (option string)) "lone low surrogate -> U+FFFD" (Some "\xef\xbf\xbd")
    (decode {|"\uDC00"|});
  (* escaped control characters decode back to the raw byte *)
  Alcotest.(check (option string)) "escaped NUL" (Some "\x00") (decode {|"\u0000"|});
  Alcotest.(check bool) "malformed hex rejected" true
    (match decode {|"\u00zz"|} with
    | exception Obs.Json.Parse_error _ -> true
    | _ -> false)

(* ---- span path, gc accounting, and the Fun.protect guard ---- *)

let test_span_path_and_alloc () =
  let completed = ref [] in
  let handle = Obs.Span.on_complete (fun c -> completed := c :: !completed) in
  Obs.Span.with_ ~name:"outer" (fun () ->
      Obs.Span.with_ ~name:"inner" (fun () ->
          ignore (Sys.opaque_identity (Array.make 100_000 0.0))));
  Obs.Span.off handle;
  let find name = List.find (fun c -> c.Obs.Span.name = name) !completed in
  Alcotest.(check (list string)) "nested path is root-first" [ "outer"; "inner" ]
    (find "inner").Obs.Span.path;
  Alcotest.(check (list string)) "root path is just the root" [ "outer" ]
    (find "outer").Obs.Span.path;
  Alcotest.(check bool) "allocation attributed to the allocating span" true
    ((find "inner").Obs.Span.alloc_words >= 100_000.0);
  Alcotest.(check bool) "allocation included in the enclosing span" true
    ((find "outer").Obs.Span.alloc_words >= (find "inner").Obs.Span.alloc_words)

let test_span_unbalanced_exit () =
  (* the Fun.protect guard: an exception mid-body still pops the stack,
     reports the span (raised = true), and leaves the tree coherent *)
  let completed = ref [] in
  let handle = Obs.Span.on_complete (fun c -> completed := c :: !completed) in
  (try
     Obs.Span.with_ ~name:"guard_outer" (fun () ->
         Obs.Span.with_ ~name:"guard_inner" (fun () -> failwith "kaboom"))
   with Failure _ -> ());
  Obs.Span.with_ ~name:"guard_after" (fun () -> ());
  Obs.Span.off handle;
  let find name = List.find (fun c -> c.Obs.Span.name = name) !completed in
  Alcotest.(check bool) "inner flagged raised" true (find "guard_inner").Obs.Span.raised;
  Alcotest.(check bool) "outer flagged raised" true (find "guard_outer").Obs.Span.raised;
  Alcotest.(check (list string)) "stack clean: next span is a root again"
    [ "guard_after" ]
    (find "guard_after").Obs.Span.path

(* ---- drain/absorb edge cases ---- *)

let test_drain_empty_registry () =
  Obs.Metrics.reset ();
  Alcotest.(check int) "empty registry drains to nothing" 0
    (List.length (Obs.Metrics.drain ()));
  Obs.Metrics.absorb [];
  Alcotest.(check int) "absorbing nothing is a no-op" 0
    (List.length (Obs.Metrics.snapshot ()))

let test_drain_histogram_only () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram "t.histonly" in
  for i = 1 to 100 do
    Obs.Metrics.observe h (float_of_int i)
  done;
  let snaps = Obs.Metrics.drain () in
  Alcotest.(check int) "histogram-only registry drains one snap" 1 (List.length snaps);
  Alcotest.(check int) "drain resets the registry" 0 (List.length (Obs.Metrics.snapshot ()));
  (* absorbing the same buffer twice must merge cell-by-cell *)
  Obs.Metrics.absorb snaps;
  Obs.Metrics.absorb snaps;
  match Obs.Metrics.find_histogram "t.histonly" with
  | Some h' ->
    Alcotest.(check int) "counts merged" 200 (Obs.Metrics.histogram_count h');
    Alcotest.(check (float 1.0)) "sums merged" 10_100.0 (Obs.Metrics.histogram_sum h')
  | None -> Alcotest.fail "histogram missing after absorb"

(* ---- the full measurement event taxonomy ---- *)

let test_measure_event_kinds () =
  let control = Lazy.force small_control in
  let kinds = Hashtbl.create 16 in
  let telemetry ev = Hashtbl.replace kinds (Obs.Events.kind ev) () in
  let report =
    Nebby.Measurement.measure ~control ~telemetry ~proto:Netsim.Packet.Tcp
      ~noise:Netsim.Path.mild ~seed:42 ~make_cca:(Cca.Registry.create "cubic") ()
  in
  Alcotest.(check bool) "classification produced a label" true
    (String.length report.Nebby.Measurement.label > 0);
  Alcotest.(check bool) "subscription removed afterwards" false (Obs.Events.active ());
  (* golden event-kind set: at least one event from every pipeline stage
     (netsim, transport, BiF pipeline, classifier, measurement driver) *)
  List.iter
    (fun kind ->
      Alcotest.(check bool) ("kind emitted: " ^ kind) true (Hashtbl.mem kinds kind))
    [
      "sim_run_complete";
      "packet_enqueued";
      "packet_dropped";
      "cwnd_update";
      "retransmit";
      "backoff_detected";
      "segment_produced";
      "classifier_vote";
      "attempt_started";
      "measurement_done";
    ]

let suite =
  [
    Alcotest.test_case "counter sequential updates" `Quick test_counter_updates;
    Alcotest.test_case "gauge last-write-wins" `Quick test_gauge;
    Alcotest.test_case "histogram percentiles (uniform)" `Quick test_histogram_uniform;
    Alcotest.test_case "histogram percentiles (constant)" `Quick test_histogram_constant;
    Alcotest.test_case "histogram percentiles (bimodal)" `Quick test_histogram_bimodal;
    Alcotest.test_case "histogram underflow cell" `Quick test_histogram_underflow;
    Alcotest.test_case "span nesting forms a tree" `Quick test_span_tree;
    Alcotest.test_case "span survives exceptions" `Quick test_span_exception;
    Alcotest.test_case "no sink: fast path emits nothing" `Quick test_no_sink_emits_nothing;
    Alcotest.test_case "armed run records metrics" `Quick test_armed_run_records;
    Alcotest.test_case "jsonl round trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "json parser" `Quick test_json_parser;
    Alcotest.test_case "json escaping: every byte round trips" `Quick
      test_json_string_escaping;
    Alcotest.test_case "json unicode escapes and surrogates" `Quick
      test_json_unicode_escapes;
    Alcotest.test_case "span path and gc attribution" `Quick test_span_path_and_alloc;
    Alcotest.test_case "span guard survives unbalanced exits" `Quick
      test_span_unbalanced_exit;
    Alcotest.test_case "drain/absorb: empty registry" `Quick test_drain_empty_registry;
    Alcotest.test_case "drain/absorb: histogram-only registry" `Quick
      test_drain_histogram_only;
    Alcotest.test_case "measure emits every stage's events" `Quick test_measure_event_kinds;
  ]
