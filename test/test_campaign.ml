(* Tests for multi-seed campaigns: the shared seed-spec resolver, store
   round trips, aggregation statistics (CI math, NaN/inf guard, outliers,
   confusion), pass gates, dashboard edge cases (0 seeds, single-seed CI
   degeneracy, non-finite cells), Pool.map_stream ordering, and the
   jobs=1 vs jobs=4 byte-identity of the campaign runner. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let run ?(seed = 1) ?(metrics = []) ?(outcomes = []) () =
  { Obs.Campaign.seed; metrics; outcomes }

let outcome subject expected got = { Obs.Campaign.subject; expected; got }

let cell name summary =
  match List.assoc_opt name summary.Obs.Campaign.cells with
  | Some st -> st
  | None -> Alcotest.failf "summary has no cell %s" name

(* ---- seed-spec resolver ---- *)

let test_resolve_seeds () =
  let ok = function Ok s -> s | Error e -> Alcotest.failf "unexpected error: %s" e in
  Alcotest.(check (list int))
    "neither flag: the base seed alone" [ 42 ]
    (ok (Obs.Campaign.resolve_seeds ~base:42 ()));
  Alcotest.(check (list int))
    "--seeds N counts up from base" [ 7; 8; 9 ]
    (ok (Obs.Campaign.resolve_seeds ~count:3 ~base:7 ()));
  Alcotest.(check (list int))
    "--seed-list wins verbatim" [ 5; 3; 11 ]
    (ok (Obs.Campaign.resolve_seeds ~seed_list:[ 5; 3; 11 ] ~base:42 ()));
  let err = function
    | Error e -> e
    | Ok _ -> Alcotest.fail "expected an error"
  in
  Alcotest.(check bool)
    "both flags rejected" true
    (contains ~needle:"alternatives"
       (err (Obs.Campaign.resolve_seeds ~count:2 ~seed_list:[ 1 ] ~base:0 ())));
  Alcotest.(check bool)
    "empty count rejected" true
    (contains ~needle:"empty" (err (Obs.Campaign.resolve_seeds ~count:0 ~base:0 ())));
  Alcotest.(check bool)
    "empty list rejected" true
    (contains ~needle:"empty" (err (Obs.Campaign.resolve_seeds ~seed_list:[] ~base:0 ())));
  let dup = err (Obs.Campaign.resolve_seeds ~seed_list:[ 4; 9; 4 ] ~base:0 ()) in
  Alcotest.(check bool) "duplicate rejected, offender named" true (contains ~needle:"4" dup)

(* ---- store round trip ---- *)

let test_store_round_trip () =
  let runs =
    [
      run ~seed:1
        ~metrics:[ ("accuracy", 0.75); ("margin.mean", 12.5) ]
        ~outcomes:[ outcome "cubic" "cubic" "cubic"; outcome "bbr" "bbr" "unknown" ]
        ();
      run ~seed:2 ~metrics:[ ("accuracy", 1.0) ] ();
    ]
  in
  let path = Filename.temp_file "campaign" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Obs.Campaign.write_store oc ~experiment:"accuracy" runs;
      close_out oc;
      let experiment, back = Obs.Campaign.read_store path in
      Alcotest.(check string) "experiment tag survives" "accuracy" experiment;
      Alcotest.(check int) "run count survives" 2 (List.length back);
      Alcotest.(check bool) "runs survive bit for bit" true (back = runs);
      (* streaming halves produce the identical file *)
      let oc = open_out path in
      Obs.Campaign.write_header oc ~experiment:"accuracy" ~runs:2;
      List.iter (Obs.Campaign.write_seed_line oc) runs;
      close_out oc;
      let _, streamed = Obs.Campaign.read_store path in
      Alcotest.(check bool) "streamed store reads back equal" true (streamed = runs))

let test_store_version_mismatch () =
  let path = Filename.temp_file "campaign" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"kind\":\"campaign\",\"version\":999,\"experiment\":\"x\",\"runs\":0}\n";
      close_out oc;
      Alcotest.check_raises "future schema fails loudly"
        (Obs.Campaign.Version_mismatch
           { expected = Obs.Campaign.schema_version; got = 999 })
        (fun () -> ignore (Obs.Campaign.read_store path)))

let test_store_truncated_final_record () =
  let runs =
    [
      run ~seed:1 ~metrics:[ ("accuracy", 0.75) ] ();
      run ~seed:2 ~metrics:[ ("accuracy", 1.0) ] ();
      run ~seed:3 ~metrics:[ ("accuracy", 0.5) ] ();
    ]
  in
  let path = Filename.temp_file "campaign" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Obs.Campaign.write_header oc ~experiment:"accuracy" ~runs:3;
      List.iter (Obs.Campaign.write_seed_line oc) runs;
      close_out oc;
      (* a SIGKILL mid-append leaves the last line cut short *)
      let full = In_channel.with_open_bin path In_channel.input_all in
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 (String.length full - 15));
      close_out oc;
      let experiment, back = Obs.Campaign.read_store path in
      Alcotest.(check string) "experiment still read" "accuracy" experiment;
      Alcotest.(check int) "readable prefix returned" 2 (List.length back);
      Alcotest.(check bool) "prefix seeds intact" true
        (List.map (fun (r : Obs.Campaign.seed_run) -> r.Obs.Campaign.seed) back = [ 1; 2 ]);
      (* corruption before the final record is NOT a crash signature and
         must still fail loudly *)
      let oc = open_out_bin path in
      output_string oc
        "{\"kind\":\"campaign\",\"version\":1,\"experiment\":\"x\",\"runs\":2\"\"}\n";
      close_out oc;
      match Obs.Campaign.read_store path with
      | _ -> Alcotest.fail "malformed header must raise"
      | exception Obs.Json.Parse_error _ -> ())

(* ---- aggregation ---- *)

let test_aggregate_stats () =
  let runs =
    List.map
      (fun (seed, v) -> run ~seed ~metrics:[ ("accuracy", v) ] ())
      [ (1, 0.6); (2, 0.8); (3, 1.0) ]
  in
  let s = Obs.Campaign.aggregate ~experiment:"accuracy" runs in
  let st = cell "accuracy" s in
  Alcotest.(check int) "n" 3 st.Obs.Campaign.n;
  Alcotest.(check (float 1e-9)) "mean" 0.8 st.Obs.Campaign.mean;
  Alcotest.(check (float 1e-9)) "median" 0.8 st.Obs.Campaign.median;
  Alcotest.(check (float 1e-9)) "min" 0.6 st.Obs.Campaign.min_v;
  Alcotest.(check (float 1e-9)) "max" 1.0 st.Obs.Campaign.max_v;
  (* population stddev of {0.6,0.8,1.0} = sqrt(2/75); ci95 uses the
     unbiased sample variance: 1.96 * sqrt(0.04/3) *)
  Alcotest.(check (float 1e-9)) "stddev" (sqrt (2.0 /. 75.0)) st.Obs.Campaign.stddev;
  Alcotest.(check (float 1e-9))
    "ci95" (1.96 *. sqrt (0.04 /. 3.0))
    st.Obs.Campaign.ci95;
  Alcotest.(check (list int)) "seeds in campaign order" [ 1; 2; 3 ] s.Obs.Campaign.seeds

let test_aggregate_nan_guard () =
  let runs =
    [
      run ~seed:1 ~metrics:[ ("m", 1.0) ] ();
      run ~seed:2 ~metrics:[ ("m", Float.nan) ] ();
      run ~seed:3 ~metrics:[ ("m", Float.infinity) ] ();
      run ~seed:4 ~metrics:[ ("m", 3.0) ] ();
    ]
  in
  let st = cell "m" (Obs.Campaign.aggregate ~experiment:"x" runs) in
  Alcotest.(check int) "non-finite values dropped before stats" 2 st.Obs.Campaign.n;
  Alcotest.(check (float 1e-9)) "mean over the finite values" 2.0 st.Obs.Campaign.mean;
  Alcotest.(check bool) "every stat finite" true
    (List.for_all Float.is_finite
       [
         st.Obs.Campaign.mean; st.Obs.Campaign.stddev; st.Obs.Campaign.ci95;
         st.Obs.Campaign.median; st.Obs.Campaign.min_v; st.Obs.Campaign.max_v;
       ])

let test_aggregate_single_seed () =
  let s =
    Obs.Campaign.aggregate ~experiment:"x" [ run ~seed:9 ~metrics:[ ("m", 0.5) ] () ]
  in
  let st = cell "m" s in
  Alcotest.(check int) "n=1" 1 st.Obs.Campaign.n;
  Alcotest.(check (float 0.0)) "one sample has no interval" 0.0 st.Obs.Campaign.ci95;
  Alcotest.(check (float 0.0)) "nor spread" 0.0 st.Obs.Campaign.stddev

let test_confusion_and_outliers () =
  let good seed = run ~seed ~metrics:[ ("accuracy", 1.0) ]
      ~outcomes:[ outcome "cubic" "cubic" "cubic" ] () in
  let bad =
    run ~seed:99 ~metrics:[ ("accuracy", 0.0) ]
      ~outcomes:[ outcome "cubic" "cubic" "unknown" ] ()
  in
  let s =
    Obs.Campaign.aggregate ~experiment:"accuracy" [ good 1; good 2; good 3; good 4; bad ]
  in
  (match s.Obs.Campaign.confusion with
  | [ ("cubic", gots) ] ->
    Alcotest.(check (list (pair string int)))
      "confusion tallies count-descending" [ ("cubic", 4); ("unknown", 1) ] gots
  | _ -> Alcotest.fail "expected one confusion row for cubic");
  match s.Obs.Campaign.outliers with
  | o :: _ ->
    Alcotest.(check int) "the failing seed is the outlier" 99 o.Obs.Campaign.o_seed;
    Alcotest.(check (list string))
      "its misses name the provenance subjects" [ "cubic->unknown" ]
      o.Obs.Campaign.misses
  | [] -> Alcotest.fail "expected an outlier"

let test_summary_json_round_trip () =
  let s =
    Obs.Campaign.aggregate ~experiment:"accuracy"
      [
        run ~seed:1 ~metrics:[ ("accuracy", 0.9) ]
          ~outcomes:[ outcome "bbr" "bbr" "bbr" ] ();
        run ~seed:2 ~metrics:[ ("accuracy", 0.7) ]
          ~outcomes:[ outcome "bbr" "bbr" "unknown" ] ();
      ]
  in
  let j = Obs.Campaign.summary_to_json s in
  let back = Obs.Campaign.summary_of_json j in
  Alcotest.(check bool) "summary survives the JSON round trip" true (back = s);
  Alcotest.(check string)
    "serialization is deterministic"
    (Obs.Json.to_string j)
    (Obs.Json.to_string (Obs.Campaign.summary_to_json back))

(* ---- pass gates ---- *)

let gate ?(name = "g") metric gstat op bound =
  { Obs.Campaign.gate_name = name; metric; gstat; op; bound }

let status r = r.Obs.Campaign.status

let test_gates () =
  let s =
    Obs.Campaign.aggregate ~experiment:"x"
      [
        run ~seed:1 ~metrics:[ ("accuracy", 0.8) ] ();
        run ~seed:2 ~metrics:[ ("accuracy", 0.9) ] ();
      ]
  in
  let eval g extra = List.hd (Obs.Campaign.evaluate ~gates:[ g ] ~extra s) in
  let floor_pass = eval (gate "accuracy" Obs.Campaign.Mean Obs.Campaign.Floor 0.7) [] in
  Alcotest.(check bool) "floor under the mean passes" true (status floor_pass = Obs.Campaign.Pass);
  let floor_fail = eval (gate "accuracy" Obs.Campaign.Mean Obs.Campaign.Floor 0.95) [] in
  Alcotest.(check bool) "floor above the mean fails" true (status floor_fail = Obs.Campaign.Fail);
  let skip = eval (gate "absent" Obs.Campaign.Mean Obs.Campaign.Floor 0.0) [] in
  Alcotest.(check bool) "absent metric skips" true (status skip = Obs.Campaign.Skip);
  let extra_pass =
    eval
      (gate "census_sites_per_s" Obs.Campaign.Mean Obs.Campaign.Floor 1.0)
      [ ("census_sites_per_s", 10.0) ]
  in
  Alcotest.(check bool) "extras feed gates" true (status extra_pass = Obs.Campaign.Pass);
  let nonfinite =
    eval
      (gate "census_sites_per_s" Obs.Campaign.Mean Obs.Campaign.Floor 0.0)
      [ ("census_sites_per_s", Float.nan) ]
  in
  Alcotest.(check bool) "a non-finite value never passes" true
    (status nonfinite = Obs.Campaign.Fail);
  Alcotest.(check bool) "skips do not fail a campaign" true
    (Obs.Campaign.gates_pass [ floor_pass; skip ]);
  Alcotest.(check bool) "one fail fails it" false
    (Obs.Campaign.gates_pass [ floor_pass; floor_fail ]);
  let ci = gate "accuracy" Obs.Campaign.Ci_width Obs.Campaign.Ceiling 1.0 in
  Alcotest.(check string)
    "gate clause renders" "ci_width(accuracy) <= 1"
    (Obs.Campaign.gate_describe ci)

(* ---- dashboard edge cases ---- *)

let test_render_empty_campaign () =
  let s = Obs.Campaign.aggregate ~experiment:"accuracy" [] in
  let html = Obs.Render.campaign_dashboard ~summary:s () in
  Alcotest.(check bool) "0 seeds degrades to a note" true
    (contains ~needle:"empty campaign (0 seeds)" html);
  Alcotest.(check bool) "no charts rendered" false (contains ~needle:"<svg" html);
  Alcotest.(check string) "byte-identical on re-render" html
    (Obs.Render.campaign_dashboard ~summary:s ())

let test_render_single_seed_no_whiskers () =
  let s =
    Obs.Campaign.aggregate ~experiment:"accuracy"
      [ run ~seed:1 ~metrics:[ ("accuracy.cubic", 0.5) ] () ]
  in
  let html = Obs.Render.campaign_dashboard ~summary:s () in
  Alcotest.(check bool) "bar drawn" true (contains ~needle:"<rect" html);
  Alcotest.(check bool) "single-seed CI is degenerate: no whisker lines" false
    (contains ~needle:"<line x1" html);
  (* two seeds with spread produce whiskers from the same pipeline *)
  let s2 =
    Obs.Campaign.aggregate ~experiment:"accuracy"
      [
        run ~seed:1 ~metrics:[ ("accuracy.cubic", 0.4) ] ();
        run ~seed:2 ~metrics:[ ("accuracy.cubic", 0.8) ] ();
      ]
  in
  Alcotest.(check bool) "two seeds draw whiskers" true
    (contains ~needle:"<line x1" (Obs.Render.campaign_dashboard ~summary:s2 ()))

let test_render_non_finite_guard () =
  (* a hand-built summary can carry non-finite stats (e.g. read from a
     foreign file); the renderer must keep them out of SVG coordinates *)
  let s =
    {
      Obs.Campaign.version = Obs.Campaign.schema_version;
      experiment = "accuracy";
      seeds = [ 1; 2 ];
      cells =
        [
          ( "accuracy.broken",
            {
              Obs.Campaign.n = 2;
              mean = Float.nan;
              stddev = 0.0;
              ci95 = Float.infinity;
              median = 0.0;
              min_v = 0.0;
              max_v = 0.0;
            } );
        ];
      confusion = [];
      outliers = [];
    }
  in
  let html = Obs.Render.campaign_dashboard ~summary:s () in
  Alcotest.(check bool) "non-finite mean becomes text" true
    (contains ~needle:"non-finite" html);
  Alcotest.(check bool) "nan never reaches a coordinate" false
    (contains ~needle:"nan" (String.lowercase_ascii html));
  Alcotest.(check bool) "inf never reaches a coordinate" false
    (contains ~needle:"inf" (String.lowercase_ascii html))

let test_render_gates_and_trend () =
  let s =
    Obs.Campaign.aggregate ~experiment:"accuracy"
      [ run ~seed:1 ~metrics:[ ("accuracy", 1.0) ] () ]
  in
  let results =
    Obs.Campaign.evaluate
      ~gates:
        [
          gate ~name:"floor" "accuracy" Obs.Campaign.Mean Obs.Campaign.Floor 0.5;
          gate ~name:"absent" "nope" Obs.Campaign.Mean Obs.Campaign.Floor 0.5;
        ]
      s
  in
  let html =
    Obs.Render.campaign_dashboard
      ~trend:
        [
          ("census_parallel_s", [ ("BENCH_a", 2.0); ("BENCH_b", 1.5) ]);
          ("lonely", [ ("BENCH_a", 1.0) ]);
        ]
      ~gates:results ~summary:s ()
  in
  Alcotest.(check bool) "PASS row rendered" true (contains ~needle:">PASS<" html);
  Alcotest.(check bool) "SKIP row rendered" true (contains ~needle:">SKIP<" html);
  Alcotest.(check bool) "trend polyline for 2+ points" true
    (contains ~needle:"<polyline" html);
  Alcotest.(check bool) "single trend point degrades to a dot" true
    (contains ~needle:"<circle" html)

let test_render_heterogeneous_trend_and_pool () =
  let s =
    Obs.Campaign.aggregate ~experiment:"accuracy"
      [ run ~seed:1 ~metrics:[ ("accuracy", 1.0) ] () ]
  in
  (* ledgers from different schema generations: series cover disjoint
     ledger subsets, a never-before-seen metric name rides along, and
     one series is empty-by-filtering upstream (never passed). All must
     render without error. *)
  let html =
    Obs.Render.campaign_dashboard
      ~trend:
        [
          ("census_parallel_s", [ ("BENCH_old", 2.0) ]);
          ("pool_queue_wait_p99_us", [ ("BENCH_new", 140.0); ("BENCH_newer", 120.0) ]);
          ("some_future_metric", [ ("BENCH_newer", 1.0) ]);
        ]
      ~summary:s ()
  in
  Alcotest.(check bool) "old-only series renders" true
    (contains ~needle:"census_parallel_s" html);
  Alcotest.(check bool) "new pool series renders" true
    (contains ~needle:"pool_queue_wait_p99_us" html);
  Alcotest.(check bool) "unknown metric name renders untranslated" true
    (contains ~needle:"some_future_metric" html);
  (* the pool section embeds when a trace is supplied, and an empty
     trace degrades to a note *)
  Obs.Pooltrace.set_enabled true;
  ignore (Engine.Pool.map ~jobs:2 Fun.id (Array.init 6 Fun.id));
  Obs.Pooltrace.set_enabled false;
  let trace = Obs.Pooltrace.drain () in
  Obs.Histogram.reset ();
  let with_pool = Obs.Render.campaign_dashboard ~pool:trace ~summary:s () in
  Alcotest.(check bool) "pool section present" true
    (contains ~needle:"Pool scheduler" with_pool);
  Alcotest.(check string) "pool dashboard deterministic for an equal trace" with_pool
    (Obs.Render.campaign_dashboard ~pool:trace ~summary:s ());
  let empty = { trace with Obs.Pooltrace.tasks = []; jobs = 0 } in
  Alcotest.(check bool) "empty trace degrades to a note" true
    (contains ~needle:"empty trace" (Obs.Render.campaign_dashboard ~pool:empty ~summary:s ()))

(* ---- streaming fan-out ---- *)

let test_map_stream_order () =
  let xs = Array.init 20 Fun.id in
  let check jobs =
    let emitted = ref [] in
    let out =
      Engine.Pool.map_stream ~jobs
        ~emit:(fun i y -> emitted := (i, y) :: !emitted)
        (fun x -> x * x)
        xs
    in
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "emission in index order at jobs=%d" jobs)
      (List.init 20 (fun i -> (i, i * i)))
      (List.rev !emitted);
    Alcotest.(check bool)
      (Printf.sprintf "result array intact at jobs=%d" jobs)
      true
      (out = Array.map (fun x -> x * x) xs)
  in
  check 1;
  check 4

let test_map_stream_error_skips_emit () =
  let xs = [| 0; 1; 2; 3 |] in
  let emitted = ref [] in
  Alcotest.check_raises "lowest-index error re-raised" (Failure "boom-1") (fun () ->
      ignore
        (Engine.Pool.map_stream ~jobs:2
           ~emit:(fun i _ -> emitted := i :: !emitted)
           (fun x ->
             if x = 1 || x = 3 then failwith (Printf.sprintf "boom-%d" x) else x)
           xs));
  Alcotest.(check (list int)) "errored indices skipped" [ 0; 2 ] (List.rev !emitted)

(* ---- the campaign runner end to end ---- *)

let small_control =
  lazy (Nebby.Training.train ~runs_per_cca:4 ~quic_runs_per_cca:2 ~seed:7 ())

let test_runner_deterministic_across_jobs () =
  let control = Lazy.force small_control in
  let go jobs =
    Internet.Campaign_runner.run ~jobs ~ccas:[ "cubic"; "bbr" ] ~control
      Internet.Campaign_runner.Accuracy ~seeds:[ 1; 2; 3; 4 ]
  in
  let serial = go 1 and parallel = go 4 in
  Alcotest.(check bool) "seed runs bit-identical at jobs=1 and jobs=4" true
    (serial = parallel);
  let summary runs = Obs.Campaign.aggregate ~experiment:"accuracy" runs in
  Alcotest.(check string)
    "summary JSON byte-identical"
    (Obs.Json.to_string (Obs.Campaign.summary_to_json (summary serial)))
    (Obs.Json.to_string (Obs.Campaign.summary_to_json (summary parallel)));
  Alcotest.(check string)
    "dashboard HTML byte-identical"
    (Obs.Render.campaign_dashboard ~summary:(summary serial) ())
    (Obs.Render.campaign_dashboard ~summary:(summary parallel) ())

let test_runner_cells () =
  let control = Lazy.force small_control in
  let runs =
    Internet.Campaign_runner.run ~jobs:1 ~ccas:[ "cubic"; "bbr" ] ~control
      Internet.Campaign_runner.Accuracy ~seeds:[ 5 ]
  in
  match runs with
  | [ r ] ->
    Alcotest.(check int) "seed recorded" 5 r.Obs.Campaign.seed;
    let has k = List.mem_assoc k r.Obs.Campaign.metrics in
    List.iter
      (fun k -> Alcotest.(check bool) (k ^ " cell present") true (has k))
      [
        "accuracy"; "accuracy.cubic"; "accuracy.bbr"; "accuracy.family.loss";
        "accuracy.family.rate"; "attempts"; "confidence.mean"; "margin.mean";
      ];
    Alcotest.(check int) "one outcome per CCA" 2 (List.length r.Obs.Campaign.outcomes)
  | _ -> Alcotest.fail "expected exactly one seed run"

let test_experiment_names () =
  List.iter
    (fun e ->
      match
        Internet.Campaign_runner.experiment_of_name
          (Internet.Campaign_runner.experiment_name e)
      with
      | Ok e' -> Alcotest.(check bool) "name round trip" true (e = e')
      | Error m -> Alcotest.fail m)
    [
      Internet.Campaign_runner.Accuracy; Internet.Campaign_runner.Census;
      Internet.Campaign_runner.Chaos;
    ];
  Alcotest.(check bool) "unknown name rejected" true
    (Result.is_error (Internet.Campaign_runner.experiment_of_name "frobnicate"))

let test_family_of () =
  List.iter
    (fun (cca, fam) ->
      Alcotest.(check string) cca fam (Internet.Campaign_runner.family_of cca))
    [
      ("bbr", "rate"); ("bbr2", "rate"); ("vivace", "rate"); ("vegas", "delay");
      ("copa", "delay"); ("akamai_cc", "proprietary"); ("cubic", "loss");
      ("newreno", "loss");
    ]

let suite =
  [
    Alcotest.test_case "resolve_seeds validation" `Quick test_resolve_seeds;
    Alcotest.test_case "store round trip" `Quick test_store_round_trip;
    Alcotest.test_case "store version mismatch" `Quick test_store_version_mismatch;
    Alcotest.test_case "store tolerates truncated final record" `Quick
      test_store_truncated_final_record;
    Alcotest.test_case "aggregate statistics" `Quick test_aggregate_stats;
    Alcotest.test_case "aggregate NaN/inf guard" `Quick test_aggregate_nan_guard;
    Alcotest.test_case "single-seed degeneracy" `Quick test_aggregate_single_seed;
    Alcotest.test_case "confusion and outliers" `Quick test_confusion_and_outliers;
    Alcotest.test_case "summary JSON round trip" `Quick test_summary_json_round_trip;
    Alcotest.test_case "pass gates" `Quick test_gates;
    Alcotest.test_case "render: empty campaign" `Quick test_render_empty_campaign;
    Alcotest.test_case "render: single-seed whiskers" `Quick
      test_render_single_seed_no_whiskers;
    Alcotest.test_case "render: non-finite guard" `Quick test_render_non_finite_guard;
    Alcotest.test_case "render: gates and trend" `Quick test_render_gates_and_trend;
    Alcotest.test_case "render: heterogeneous ledgers and pool section" `Quick
      test_render_heterogeneous_trend_and_pool;
    Alcotest.test_case "map_stream emits in order" `Quick test_map_stream_order;
    Alcotest.test_case "map_stream skips errored" `Quick test_map_stream_error_skips_emit;
    Alcotest.test_case "runner jobs-determinism" `Slow test_runner_deterministic_across_jobs;
    Alcotest.test_case "runner cell vocabulary" `Slow test_runner_cells;
    Alcotest.test_case "experiment names" `Quick test_experiment_names;
    Alcotest.test_case "family_of mapping" `Quick test_family_of;
  ]
