(* The crash-safe census service: journal durability (CRC framing, torn
   tail repair, schema versioning, compaction determinism, bounded
   cache), queue backpressure and priorities, the watchdog's typed
   timeout path, the delta census across epochs, and the headline
   recovery invariant — a run killed mid-store and resumed produces a
   byte-identical final store. *)

let proto = Netsim.Packet.Tcp
let region = Internet.Region.Ohio

(* small control: these tests pin service behaviour, not accuracy *)
let control =
  lazy (Nebby.Training.train ~runs_per_cca:3 ~quic_runs_per_cca:2 ~seed:11 ())

let with_store f =
  let path = Filename.temp_file "serve" ".journal" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let append path s =
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---- journal ---- *)

let test_journal_roundtrip () =
  with_store (fun path ->
      let j = Engine.Journal.open_ path in
      Engine.Journal.put j ~key:"b" ~value:"2";
      Engine.Journal.put j ~key:"a" ~value:"1";
      Engine.Journal.put j ~key:"b" ~value:"22";
      (* last write wins, with "quoted \" and\nnewline" surviving framing *)
      Engine.Journal.put j ~key:"odd \"key\"" ~value:"line1\nline2";
      Alcotest.(check (option string)) "overwrite visible" (Some "22")
        (Engine.Journal.find j "b");
      Alcotest.(check int) "live records" 3 (Engine.Journal.length j);
      Engine.Journal.close j;
      let j = Engine.Journal.open_ path in
      Alcotest.(check (option string)) "a survives reopen" (Some "1")
        (Engine.Journal.find j "a");
      Alcotest.(check (option string)) "overwrite survives reopen" (Some "22")
        (Engine.Journal.find j "b");
      Alcotest.(check (option string)) "exotic bytes survive framing"
        (Some "line1\nline2")
        (Engine.Journal.find j "odd \"key\"");
      Alcotest.(check (option string)) "absent key" None (Engine.Journal.find j "zzz");
      Alcotest.(check (list string)) "keys sorted"
        [ "a"; "b"; "odd \"key\"" ] (Engine.Journal.keys j);
      Alcotest.(check (list string)) "fold in sorted key order" [ "a"; "b"; "odd \"key\"" ]
        (List.rev (Engine.Journal.fold (fun k _ acc -> k :: acc) j []));
      Engine.Journal.close j)

let test_journal_torn_tail () =
  with_store (fun path ->
      let j = Engine.Journal.open_ path in
      Engine.Journal.put j ~key:"a" ~value:"1";
      Engine.Journal.put j ~key:"b" ~value:"2";
      Engine.Journal.close j;
      let good = read_file path in
      (* a SIGKILL mid-write leaves a partial frame with no newline *)
      append path "deadbeef {\"key\":\"c\",\"val";
      let warned = ref "" in
      let j = Engine.Journal.open_ ~on_warning:(fun m -> warned := m) path in
      Alcotest.(check int) "one torn record dropped" 1 (Engine.Journal.torn_dropped j);
      Alcotest.(check bool) "warning names the torn tail" true
        (contains ~needle:"torn" !warned);
      Alcotest.(check int) "good records survive" 2 (Engine.Journal.length j);
      Alcotest.(check bool) "file truncated back to the good prefix" true
        (read_file path = good);
      (* the repaired journal accepts appends at the repaired offset *)
      Engine.Journal.put j ~key:"c" ~value:"3";
      Engine.Journal.close j;
      let j = Engine.Journal.open_ path in
      Alcotest.(check (option string)) "append after repair durable" (Some "3")
        (Engine.Journal.find j "c");
      Engine.Journal.close j)

let test_journal_corrupt_line_drops_suffix () =
  with_store (fun path ->
      let j = Engine.Journal.open_ path in
      Engine.Journal.put j ~key:"a" ~value:"1";
      Engine.Journal.close j;
      (* a bad CRC poisons its line and everything after it *)
      append path "00000000 {\"key\":\"x\",\"value\":\"y\"}\n";
      append path (Printf.sprintf "%08x %s\n" 0 "not json at all");
      let j = Engine.Journal.open_ ~on_warning:ignore path in
      Alcotest.(check int) "both suspect records dropped" 2
        (Engine.Journal.torn_dropped j);
      Alcotest.(check int) "prefix intact" 1 (Engine.Journal.length j);
      Engine.Journal.close j)

let test_journal_version_mismatch () =
  with_store (fun path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "{\"kind\":\"nebby_journal\",\"version\":99}\n");
      Alcotest.check_raises "future schema fails loudly"
        (Engine.Journal.Version_mismatch
           { expected = Engine.Journal.schema_version; got = 99 })
        (fun () -> ignore (Engine.Journal.open_ path));
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "{\"kind\":\"other\",\"version\":1}\n");
      match Engine.Journal.open_ path with
      | _ -> Alcotest.fail "foreign file must not open as a journal"
      | exception Obs.Json.Parse_error _ -> ())

let test_journal_compaction_deterministic () =
  with_store (fun path_a ->
      with_store (fun path_b ->
          (* same final map, different insertion histories *)
          let a = Engine.Journal.open_ path_a in
          Engine.Journal.put a ~key:"x" ~value:"stale";
          Engine.Journal.put a ~key:"y" ~value:"2";
          Engine.Journal.put a ~key:"x" ~value:"1";
          Engine.Journal.compact a;
          Engine.Journal.close a;
          let b = Engine.Journal.open_ path_b in
          Engine.Journal.put b ~key:"y" ~value:"2";
          Engine.Journal.put b ~key:"x" ~value:"1";
          Engine.Journal.compact b;
          Engine.Journal.close b;
          Alcotest.(check bool) "histories converge byte-identically" true
            (read_file path_a = read_file path_b);
          (* compacting again changes nothing *)
          let once = read_file path_a in
          let a = Engine.Journal.open_ path_a in
          Engine.Journal.compact a;
          Alcotest.(check (option string)) "reads survive compaction" (Some "1")
            (Engine.Journal.find a "x");
          Engine.Journal.close a;
          Alcotest.(check bool) "compaction idempotent" true (once = read_file path_a)))

let test_journal_bounded_cache () =
  with_store (fun path ->
      let j = Engine.Journal.open_ ~max_entries:2 path in
      for i = 1 to 6 do
        Engine.Journal.put j ~key:(Printf.sprintf "k%d" i) ~value:(string_of_int i)
      done;
      (* most entries were evicted from memory; finds re-read from disk
         through the CRC check and still agree *)
      for i = 1 to 6 do
        Alcotest.(check (option string))
          (Printf.sprintf "k%d readable" i)
          (Some (string_of_int i))
          (Engine.Journal.find j (Printf.sprintf "k%d" i))
      done;
      Engine.Journal.close j;
      match Engine.Journal.put j ~key:"late" ~value:"x" with
      | () -> Alcotest.fail "put after close must fail"
      | exception Failure _ -> ())

(* ---- job queue ---- *)

let test_queue_backpressure () =
  let q = Serve.Job_queue.create ~high_water:2 () in
  Alcotest.(check bool) "first accepted" true (Serve.Job_queue.push q "a" = Serve.Job_queue.Accepted);
  Alcotest.(check bool) "second accepted" true (Serve.Job_queue.push q "b" = Serve.Job_queue.Accepted);
  Alcotest.(check bool) "high water refuses" true
    (Serve.Job_queue.push q "c" = Serve.Job_queue.Overloaded);
  Alcotest.(check int) "rejection counted" 1 (Serve.Job_queue.overloads q);
  Alcotest.(check int) "rejected push does not grow the queue" 2 (Serve.Job_queue.depth q);
  Alcotest.(check bool) "force bypasses the high water" true
    (Serve.Job_queue.push q ~force:true "r" = Serve.Job_queue.Accepted);
  Alcotest.(check int) "forced push admitted" 3 (Serve.Job_queue.depth q);
  Serve.Job_queue.close q;
  Alcotest.(check bool) "closed refuses" true (Serve.Job_queue.push q "d" = Serve.Job_queue.Closed);
  Alcotest.(check (option string)) "drain after close" (Some "a") (Serve.Job_queue.pop q);
  Alcotest.(check (list string)) "batch drains the rest" [ "b"; "r" ]
    (Serve.Job_queue.pop_batch q 10);
  Alcotest.(check (option string)) "closed and drained" None (Serve.Job_queue.pop q)

let test_queue_priorities () =
  let q = Serve.Job_queue.create ~levels:2 ~high_water:10 () in
  ignore (Serve.Job_queue.push q ~prio:1 "bulk1");
  ignore (Serve.Job_queue.push q ~prio:0 "urgent1");
  ignore (Serve.Job_queue.push q ~prio:1 "bulk2");
  ignore (Serve.Job_queue.push q ~prio:0 "urgent2");
  Alcotest.(check (list string)) "urgent first, FIFO within a level"
    [ "urgent1"; "urgent2"; "bulk1"; "bulk2" ]
    (Serve.Job_queue.pop_batch q 10)

let test_queue_flight_events () =
  Obs.Flight.set_enabled true;
  Obs.Flight.clear ();
  let m = Obs.Flight.mark () in
  let q = Serve.Job_queue.create ~high_water:1 () in
  ignore (Serve.Job_queue.push q "a");
  ignore (Serve.Job_queue.push q "b");
  let evs =
    List.filter
      (fun (e : Obs.Flight.event) -> e.Obs.Flight.kind = Obs.Flight.Serve)
      (Obs.Flight.events ~since:m ())
  in
  Alcotest.(check (list string)) "admission decisions recorded"
    [ "enqueue"; "overloaded" ]
    (List.map (fun (e : Obs.Flight.event) -> e.Obs.Flight.detail) evs);
  Obs.Flight.clear ()

(* ---- the service ---- *)

let config ~sites ~epochs =
  {
    Serve.Service.default_config with
    sites;
    epochs;
    seed = 5;
    jobs = 2;
    high_water = 16;
    batch = 4;
  }

let run_service ?config:(cfg = config ~sites:6 ~epochs:1) ~store () =
  Serve.Service.run ~control:(Lazy.force control) ~config:cfg ~store

let test_kill_and_resume_byte_identical () =
  with_store (fun reference ->
      with_store (fun crashed ->
          let cfg = config ~sites:6 ~epochs:2 in
          let s = run_service ~config:cfg ~store:reference () in
          Alcotest.(check int) "both epochs fully durable" 12
            (s.Serve.Service.measured + s.Serve.Service.carried);
          let full = read_file reference in
          (* simulate a SIGKILL: keep a prefix of the store ending inside
             a record, then restart the service on it *)
          let cut = String.length full - 37 in
          Out_channel.with_open_bin crashed (fun oc ->
              Out_channel.output_string oc (String.sub full 0 cut));
          let r = run_service ~config:cfg ~store:crashed () in
          Alcotest.(check bool) "restart recovered committed verdicts" true
            (r.Serve.Service.recovered > 0);
          Alcotest.(check bool) "restart dropped the torn record" true
            (r.Serve.Service.torn_dropped > 0);
          Alcotest.(check bool) "resumed store byte-identical to uninterrupted" true
            (read_file crashed = full)))

let test_rerun_is_all_recovered () =
  with_store (fun store ->
      let first = run_service ~store () in
      Alcotest.(check int) "cold run recovers nothing" 0 first.Serve.Service.recovered;
      let again = run_service ~store () in
      Alcotest.(check int) "warm rerun measures nothing" 0 again.Serve.Service.measured;
      Alcotest.(check int) "every verdict recovered from the journal" 6
        again.Serve.Service.recovered;
      Alcotest.(check int) "snapshot present" 1 again.Serve.Service.snapshots)

let test_watchdog_timeout_path () =
  with_store (fun store ->
      (* deadline 0: every measurement overruns, is retried once on the
         timeout budget, then committed as a typed unknown *)
      let cfg =
        { (config ~sites:3 ~epochs:1) with Serve.Service.deadline_s = 0.0; jobs = 1 }
      in
      let s = run_service ~config:cfg ~store () in
      Alcotest.(check int) "budget 1: two deadline hits per site" 6
        s.Serve.Service.timeouts;
      Alcotest.(check int) "every site still committed" 3 s.Serve.Service.measured;
      let j = Engine.Journal.open_ store in
      let sites = Internet.Population.generate ~n:3 ~seed:cfg.Serve.Service.seed () in
      let key =
        Printf.sprintf "e0|%s"
          (Internet.Census.cache_key ~control:(Lazy.force control) ~proto ~region
             (List.hd sites))
      in
      (match Engine.Journal.find j key with
      | None -> Alcotest.fail "timed-out site has no record"
      | Some v ->
        Alcotest.(check bool) "record carries the timeout chain" true
          (contains ~needle:"\"failures\":[\"timeout\",\"timeout\"]" v));
      Engine.Journal.close j)

let test_delta_census_carries_and_remeasures () =
  with_store (fun store ->
      (* floors below any real verdict: nothing decays, epoch 1 is pure
         carry-forward *)
      let stable =
        {
          (config ~sites:5 ~epochs:2) with
          Serve.Service.confidence_floor = -1.0;
          margin_floor = -1.0;
        }
      in
      let s = run_service ~config:stable ~store () in
      Alcotest.(check int) "epoch 0 measured every site" 5 s.Serve.Service.measured;
      Alcotest.(check int) "epoch 1 carried every verdict" 5 s.Serve.Service.carried;
      Alcotest.(check int) "one snapshot per epoch" 2 s.Serve.Service.snapshots);
  with_store (fun store ->
      (* floors above any verdict: everything decays, epoch 1 re-measures *)
      let decaying =
        {
          (config ~sites:5 ~epochs:2) with
          Serve.Service.confidence_floor = 2.0;
          margin_floor = 1e9;
        }
      in
      let s = run_service ~config:decaying ~store () in
      Alcotest.(check int) "both epochs measured every site" 10 s.Serve.Service.measured;
      Alcotest.(check int) "nothing carried" 0 s.Serve.Service.carried;
      let j = Engine.Journal.open_ store in
      (match Engine.Journal.find j "snapshot|e1" with
      | None -> Alcotest.fail "epoch 1 snapshot missing"
      | Some v ->
        Alcotest.(check bool) "snapshot records the population size" true
          (contains ~needle:"\"total_hosts\":5" v));
      Engine.Journal.close j)

(* ---- health surface ---- *)

let with_status f =
  let path = Filename.temp_file "serve_status" ".json" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".prom"; path ^ ".tmp" ])
    (fun () -> f path)

let test_status_final_snapshot_deterministic () =
  (* the final snapshot carries only commit-tick content, so two fresh
     runs of the same workload at different jobs counts must leave
     byte-identical status files — the check.sh serve gate *)
  let run_with ~jobs =
    with_store (fun store ->
        with_status (fun status ->
            let cfg =
              { (config ~sites:5 ~epochs:1) with Serve.Service.jobs; status_file = Some status }
            in
            ignore (run_service ~config:cfg ~store ());
            (read_file status, read_file (status ^ ".prom"))))
  in
  let json1, prom1 = run_with ~jobs:1 in
  let json2, prom2 = run_with ~jobs:2 in
  Alcotest.(check string) "final JSON snapshot identical jobs=1 vs jobs=2" json1 json2;
  Alcotest.(check string) "final Prometheus exposition identical" prom1 prom2;
  Alcotest.(check bool) "final snapshot says phase=final" true
    (contains ~needle:"\"phase\":\"final\"" json1);
  Alcotest.(check bool) "jobs_per_s is null in the final snapshot" true
    (contains ~needle:"\"jobs_per_s\":null" json1);
  Alcotest.(check bool) "prometheus marks the daemon drained" true
    (contains ~needle:"nebby_serve_up 0" prom1)

let test_status_read_render_and_version_gate () =
  with_store (fun store ->
      with_status (fun status ->
          let cfg =
            { (config ~sites:4 ~epochs:1) with Serve.Service.status_file = Some status }
          in
          ignore (run_service ~config:cfg ~store ());
          let snap = Serve.Health.read status in
          Alcotest.(check string) "phase" "final" snap.Serve.Health.phase;
          Alcotest.(check int) "no queue lag after drain" 0 snap.Serve.Health.journal_lag;
          Alcotest.(check bool) "queue fully drained" true
            (List.for_all (fun d -> d = 0) snap.Serve.Health.queue_depths);
          Alcotest.(check int) "commits cover sites + snapshot" 5
            snap.Serve.Health.commits;
          Alcotest.(check bool) "bulk-priority waits were observed" true
            (List.exists
               (fun (prio, h) -> prio = 1 && Obs.Histogram.count h > 0)
               snap.Serve.Health.waits);
          let text = Serve.Health.render snap in
          Alcotest.(check bool) "render names the wait histogram" true
            (contains ~needle:"serve.wait_ticks.prio1" text);
          let prom = read_file (status ^ ".prom") in
          Alcotest.(check bool) "prometheus exposes wait quantiles" true
            (contains ~needle:"nebby_serve_wait_ticks{prio=\"1\",quantile=\"0.99\"}" prom);
          Alcotest.(check bool) "prometheus exposes per-prio depth" true
            (contains ~needle:"nebby_serve_queue_depth{prio=\"0\"} 0" prom);
          (* version skew is a typed failure *)
          Out_channel.with_open_bin status (fun oc ->
              Out_channel.output_string oc
                "{\"kind\":\"nebby_serve_status\",\"version\":99}\n");
          match Serve.Health.read status with
          | _ -> Alcotest.fail "expected Version_mismatch"
          | exception Serve.Health.Version_mismatch { got; _ } ->
            Alcotest.(check int) "mismatch carries the skewed version" 99 got))

let test_service_backpressure_observable () =
  with_store (fun store ->
      let cfg =
        { (config ~sites:8 ~epochs:1) with Serve.Service.high_water = 2; batch = 1 }
      in
      Obs.Runtime.with_armed (fun () ->
          Obs.Metrics.reset ();
          let s = run_service ~config:cfg ~store () in
          Alcotest.(check bool) "admission hit the high-water mark" true
            (s.Serve.Service.overloads > 0);
          Alcotest.(check int) "overloads surface as a counter"
            s.Serve.Service.overloads
            (Obs.Metrics.counter_value (Obs.Metrics.counter "serve.queue.overloaded"));
          Alcotest.(check int) "commits surface as a counter" 8
            (Obs.Metrics.counter_value (Obs.Metrics.counter "serve.measured"));
          Alcotest.(check bool) "store complete despite backpressure" true
            (s.Serve.Service.measured = 8);
          Obs.Metrics.reset ()))

let test_prometheus_help_type_pairing () =
  (* every exposed metric family must carry both a # HELP and a # TYPE
     line — a silent gap here breaks scrapers that key on HELP *)
  with_store (fun store ->
      with_status (fun status ->
          let cfg =
            {
              (config ~sites:4 ~epochs:1) with
              Serve.Service.status_file = Some status;
              alert_rules = Serve.Alerts.default_rules;
            }
          in
          ignore (run_service ~config:cfg ~store ());
          let prom = read_file (status ^ ".prom") in
          let lines = String.split_on_char '\n' prom in
          let names_after prefix =
            List.filter_map
              (fun l ->
                if String.length l > String.length prefix
                   && String.sub l 0 (String.length prefix) = prefix
                then
                  let rest =
                    String.sub l (String.length prefix)
                      (String.length l - String.length prefix)
                  in
                  Some (List.hd (String.split_on_char ' ' rest))
                else None)
              lines
            |> List.sort_uniq compare
          in
          let helps = names_after "# HELP " and types = names_after "# TYPE " in
          Alcotest.(check (list string)) "HELP and TYPE cover the same families" types
            helps;
          (* every sample belongs to a declared family *)
          let sample_families =
            List.filter_map
              (fun l ->
                if l = "" || l.[0] = '#' then None
                else
                  let base = List.hd (String.split_on_char '{' l) in
                  Some (List.hd (String.split_on_char ' ' base)))
              lines
            |> List.sort_uniq compare
          in
          (* summary samples <fam>_count / <fam>_sum belong to <fam> *)
          let base fam =
            let strip suffix =
              if Filename.check_suffix fam suffix then
                Some (Filename.chop_suffix fam suffix)
              else None
            in
            match (strip "_count", strip "_sum") with
            | Some b, _ when List.mem b helps -> b
            | _, Some b when List.mem b helps -> b
            | _ -> fam
          in
          List.iter
            (fun fam ->
              Alcotest.(check bool)
                (Printf.sprintf "family %s has HELP" fam)
                true
                (List.mem (base fam) helps);
              Alcotest.(check bool)
                (Printf.sprintf "family %s has TYPE" fam)
                true
                (List.mem (base fam) types))
            sample_families;
          (* the satellite regression: the recovery counters are documented *)
          List.iter
            (fun fam ->
              Alcotest.(check bool) (Printf.sprintf "HELP for %s" fam) true
                (List.mem fam helps))
            [
              "nebby_serve_recovered_total";
              "nebby_serve_carried_total";
              "nebby_serve_timeouts_total";
              "nebby_serve_journal_records";
              "nebby_alert";
            ]))

let test_migrating_service_detects_and_alerts () =
  (* end-to-end: a migrating population with per-epoch re-measurement
     produces drift ledger points in the store, and the alert engine
     writes a well-formed JSONL transition log *)
  with_store (fun store ->
      let log = Filename.temp_file "serve_alerts" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists log then Sys.remove log)
        (fun () ->
          let cfg =
            {
              (config ~sites:8 ~epochs:3) with
              Serve.Service.confidence_floor = 1.1 (* force re-measurement *);
              migration =
                Some { Internet.Population.default_migration with onset = 1; rate = 40.0 };
              alert_rules =
                [
                  {
                    Serve.Alerts.name = "drift-rate";
                    signal = Serve.Alerts.Drift_rate;
                    bound = Serve.Alerts.Ceiling;
                    limit = 0.5;
                    for_epochs = 1;
                  };
                ];
              alert_log = Some log;
            }
          in
          let s = run_service ~config:cfg ~store () in
          Alcotest.(check int) "every epoch re-measured" 24 s.Serve.Service.measured;
          let ledger = Serve.Observatory.ledger_of_store ~store in
          Alcotest.(check int) "one ledger point per epoch" 3
            (List.length ledger.Obs.Drift.points);
          (* alert log is valid JSONL; a fire implies the summary counted it *)
          let transitions =
            List.filter_map
              (fun l ->
                if l = "" then None
                else Some (Serve.Alerts.transition_of_json (Obs.Json.of_string l)))
              (String.split_on_char '\n' (read_file log))
          in
          let fires =
            List.length
              (List.filter (fun t -> t.Serve.Alerts.action = Serve.Alerts.Fire) transitions)
          in
          Alcotest.(check int) "summary counts the fires" fires
            s.Serve.Service.alerts_fired;
          if s.Serve.Service.drift_events > 0 then
            Alcotest.(check bool) "a detected migration fired the drift-rate rule" true
              (fires > 0)))

let suite =
  [
    Alcotest.test_case "journal roundtrip and reopen" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal torn tail dropped and repaired" `Quick
      test_journal_torn_tail;
    Alcotest.test_case "journal corrupt line drops suffix" `Quick
      test_journal_corrupt_line_drops_suffix;
    Alcotest.test_case "journal version mismatch fails loudly" `Quick
      test_journal_version_mismatch;
    Alcotest.test_case "journal compaction canonical and idempotent" `Quick
      test_journal_compaction_deterministic;
    Alcotest.test_case "journal bounded cache re-reads from disk" `Quick
      test_journal_bounded_cache;
    Alcotest.test_case "queue backpressure and close semantics" `Quick
      test_queue_backpressure;
    Alcotest.test_case "queue priorities pop urgent first" `Quick test_queue_priorities;
    Alcotest.test_case "queue admission recorded in flight ring" `Quick
      test_queue_flight_events;
    Alcotest.test_case "kill and resume converge byte-identically" `Slow
      test_kill_and_resume_byte_identical;
    Alcotest.test_case "warm rerun recovers everything" `Slow test_rerun_is_all_recovered;
    Alcotest.test_case "watchdog converts overruns into typed timeouts" `Quick
      test_watchdog_timeout_path;
    Alcotest.test_case "delta census carries stable, re-measures decayed" `Slow
      test_delta_census_carries_and_remeasures;
    Alcotest.test_case "service backpressure observable in counters" `Quick
      test_service_backpressure_observable;
    Alcotest.test_case "final status snapshot byte-identical across jobs" `Slow
      test_status_final_snapshot_deterministic;
    Alcotest.test_case "status read/render and schema version gate" `Quick
      test_status_read_render_and_version_gate;
    Alcotest.test_case "prometheus families all carry HELP and TYPE" `Quick
      test_prometheus_help_type_pairing;
    Alcotest.test_case "migrating population detected and alerted end-to-end" `Slow
      test_migrating_service_detects_and_alerts;
  ]
