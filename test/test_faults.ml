(* Tests for the fault-injection harness: plan serialization, RNG substream
   isolation, determinism under faults, graceful degradation of the
   measurement pipeline, and defensive trace validation. *)

let profile = Nebby.Profile.delay_50ms

(* Smaller than the main suite's fixture: these tests only need *some*
   trained control, not a well-calibrated one. *)
let control = lazy (Nebby.Training.train ~runs_per_cca:5 ~quic_runs_per_cca:2 ())

let run_with ?faults ~seed cca =
  Nebby.Testbed.run ~seed ?faults ~profile ~make_cca:(Cca.Registry.create cca) ()

let trace_fingerprint (r : Nebby.Testbed.result) =
  List.map
    (fun (o : Netsim.Trace.obs) -> (o.time, o.dir = Netsim.Packet.To_client, o.size))
    (Netsim.Trace.observations r.trace)

(* ---- plan serialization ---- *)

let full_plan =
  {
    Faults.seed = 77;
    specs =
      [
        Faults.Link_flap { at = 1.0; duration = 0.5 };
        Faults.Rate_change { at = 2.0; factor = 0.25 };
        Faults.Burst_loss
          { at = 3.0; duration = 1.0; dir = Netsim.Packet.To_client; prob = 0.5 };
        Faults.Reorder
          { at = 4.0; duration = 1.0; dir = Netsim.Packet.To_server; prob = 0.1; max_extra = 0.05 };
        Faults.Duplicate { at = 5.0; duration = 1.0; dir = Netsim.Packet.To_client; prob = 0.2 };
        Faults.Ack_storm { at = 6.0; duration = 1.0; hold = 0.1 };
        Faults.Capture_loss { at = 7.0; duration = 1.0; prob = 0.05 };
        Faults.Capture_jitter { std = 0.001 };
        Faults.Truncate_capture { at = 8.0 };
        Faults.Server_stall { at = 9.0; duration = 1.0 };
        Faults.Flow_reset { at = 10.0 };
      ];
  }

let test_plan_json_roundtrip () =
  let s = Faults.to_string full_plan in
  match Faults.of_string s with
  | Error e -> Alcotest.fail ("round-trip failed: " ^ e)
  | Ok plan ->
    Alcotest.(check string) "identical serialization" s (Faults.to_string plan);
    Alcotest.(check int) "seed preserved" 77 plan.Faults.seed;
    Alcotest.(check int) "all specs preserved" (List.length full_plan.Faults.specs)
      (List.length plan.Faults.specs)

let test_plan_json_rejects_garbage () =
  (match Faults.of_string "{\"nonsense\":true}" with
  | Ok _ -> Alcotest.fail "accepted a plan without fields"
  | Error _ -> ());
  match Faults.of_string "not json at all" with
  | Ok _ -> Alcotest.fail "accepted non-JSON"
  | Error _ -> ()

let test_family_names () =
  List.iter
    (fun spec ->
      let fam = Faults.spec_family spec in
      Alcotest.(check bool) (fam ^ " is a registered family") true
        (List.mem fam Faults.families))
    full_plan.Faults.specs

(* ---- RNG substreams ---- *)

let test_named_does_not_advance_parent () =
  let a = Netsim.Rng.create 123 and b = Netsim.Rng.create 123 in
  let _sub = Netsim.Rng.named a "faults.burst_loss#0" in
  let da = List.init 8 (fun _ -> Netsim.Rng.int a 1_000_000) in
  let db = List.init 8 (fun _ -> Netsim.Rng.int b 1_000_000) in
  Alcotest.(check (list int)) "parent stream untouched by forking" db da

let test_named_streams_distinct () =
  let root = Netsim.Rng.create 9 in
  let s1 = Netsim.Rng.named root "burst_loss#0" in
  let s2 = Netsim.Rng.named root "burst_loss#1" in
  let d1 = List.init 8 (fun _ -> Netsim.Rng.int s1 1_000_000) in
  let d2 = List.init 8 (fun _ -> Netsim.Rng.int s2 1_000_000) in
  Alcotest.(check bool) "different names, different streams" true (d1 <> d2)

(* ---- determinism ---- *)

let chaos_plan =
  {
    Faults.seed = 31;
    specs =
      [
        Faults.Burst_loss
          { at = 4.0; duration = 2.0; dir = Netsim.Packet.To_client; prob = 0.3 };
        Faults.Reorder
          { at = 7.0; duration = 4.0; dir = Netsim.Packet.To_client; prob = 0.1; max_extra = 0.02 };
        Faults.Capture_jitter { std = 0.001 };
      ];
  }

let test_identical_seeds_identical_traces () =
  let r1 = run_with ~faults:chaos_plan ~seed:6 "cubic" in
  let r2 = run_with ~faults:chaos_plan ~seed:6 "cubic" in
  Alcotest.(check bool) "fault plan actually fired" true (r1.faults_injected > 0);
  Alcotest.(check int) "same injection count" r1.faults_injected r2.faults_injected;
  Alcotest.(check bool) "identical capture" true
    (trace_fingerprint r1 = trace_fingerprint r2)

let test_empty_plan_is_transparent () =
  (* arming an empty plan must not perturb a single RNG draw of the base
     simulation: the capture must be byte-identical to a fault-free run *)
  let plain = run_with ~seed:11 "newreno" in
  let armed = run_with ~faults:Faults.empty ~seed:11 "newreno" in
  Alcotest.(check int) "no injections" 0 armed.faults_injected;
  Alcotest.(check bool) "identical capture" true
    (trace_fingerprint plain = trace_fingerprint armed)

let test_link_flap_changes_capture () =
  let plain = run_with ~seed:3 "cubic" in
  let flapped =
    run_with
      ~faults:{ Faults.seed = 1; specs = [ Faults.Link_flap { at = 5.0; duration = 1.0 } ] }
      ~seed:3 "cubic"
  in
  Alcotest.(check bool) "flap fired" true (flapped.faults_injected > 0);
  Alcotest.(check bool) "capture differs from fault-free run" true
    (trace_fingerprint plain <> trace_fingerprint flapped)

(* ---- graceful degradation: the acceptance criterion ---- *)

let quick_config = { Nebby.Measurement.default_config with max_attempts = 2 }

let test_no_fault_raises () =
  let control = Lazy.force control in
  List.iter
    (fun (family, plan) ->
      List.iter
        (fun cca ->
          match
            Nebby.Measurement.measure_cca ~control ~config:quick_config ~faults:plan
              ~seed:2024 cca
          with
          | report ->
            let ok =
              report.Nebby.Measurement.label <> "unknown"
              || report.Nebby.Measurement.failures <> []
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s under %s: classification or typed unknown" cca family)
              true ok
          | exception e ->
            Alcotest.fail
              (Printf.sprintf "%s under %s raised %s" cca family (Printexc.to_string e)))
        [ "newreno"; "cubic"; "bbr" ])
    (Nebby.Chaos.standard_suite ~seed:13 ())

let test_flow_reset_diagnosed () =
  let control = Lazy.force control in
  let plan = { Faults.seed = 4; specs = [ Faults.Flow_reset { at = 5.0 } ] } in
  let report = Nebby.Measurement.measure_cca ~control ~faults:plan ~seed:8 "cubic" in
  Alcotest.(check string) "cannot classify a reset flow" "unknown"
    report.Nebby.Measurement.label;
  Alcotest.(check bool) "reason chain names the reset" true
    (List.mem Nebby.Measurement.Flow_reset report.Nebby.Measurement.failures);
  (* retry budget for resets is 1: one retry then give up *)
  Alcotest.(check int) "budgeted attempts" 2 report.Nebby.Measurement.attempts

let test_truncation_diagnosed () =
  let control = Lazy.force control in
  let plan = { Faults.seed = 4; specs = [ Faults.Truncate_capture { at = 2.0 } ] } in
  let report =
    Nebby.Measurement.measure_cca ~control ~config:quick_config ~faults:plan ~seed:8 "cubic"
  in
  Alcotest.(check string) "unknown" "unknown" report.Nebby.Measurement.label;
  Alcotest.(check bool) "truncation in the chain" true
    (List.mem Nebby.Measurement.Trace_truncated report.Nebby.Measurement.failures)

let test_max_attempts_config () =
  let control = Lazy.force control in
  let plan = { Faults.seed = 4; specs = [ Faults.Flow_reset { at = 1.0 } ] } in
  let config = { Nebby.Measurement.default_config with max_attempts = 1 } in
  let report = Nebby.Measurement.measure_cca ~control ~config ~faults:plan ~seed:8 "cubic" in
  Alcotest.(check int) "single attempt honoured" 1 report.Nebby.Measurement.attempts

let test_backoff_accrues () =
  let control = Lazy.force control in
  let slept = ref [] in
  let config =
    {
      Nebby.Measurement.default_config with
      max_attempts = 3;
      retry_budgets = [];
      sleep = (fun d -> slept := d :: !slept);
    }
  in
  let plan = { Faults.seed = 4; specs = [ Faults.Truncate_capture { at = 1.0 } ] } in
  let report = Nebby.Measurement.measure_cca ~control ~config ~faults:plan ~seed:8 "cubic" in
  Alcotest.(check int) "all attempts consumed" 3 report.Nebby.Measurement.attempts;
  Alcotest.(check int) "one sleep per retry" 2 (List.length !slept);
  Alcotest.(check (float 1e-9)) "report sums the delays"
    (List.fold_left ( +. ) 0.0 !slept)
    report.Nebby.Measurement.backoff_total;
  (* exponential growth: second delay exceeds the first even with jitter,
     because base doubles and jitter adds at most 25% *)
  match List.rev !slept with
  | [ d1; d2 ] -> Alcotest.(check bool) "backoff grows" true (d2 > d1)
  | _ -> Alcotest.fail "expected exactly two delays"

let test_retry_budget_exhausted_before_max_attempts () =
  let control = Lazy.force control in
  let slept = ref [] in
  let config =
    {
      Nebby.Measurement.default_config with
      max_attempts = 10;
      retry_budgets = [ (Nebby.Measurement.Flow_reset, 1) ];
      sleep = (fun d -> slept := d :: !slept);
    }
  in
  let plan = { Faults.seed = 4; specs = [ Faults.Flow_reset { at = 1.0 } ] } in
  let report = Nebby.Measurement.measure_cca ~control ~config ~faults:plan ~seed:8 "cubic" in
  Alcotest.(check string) "exhaustion degrades to unknown" "unknown"
    report.Nebby.Measurement.label;
  (* budget 1: the first reset earns one retry, the second exhausts the
     budget — the measurement stops at 2 attempts with 8 still allowed *)
  Alcotest.(check int) "budget, not max_attempts, ends the measurement" 2
    report.Nebby.Measurement.attempts;
  Alcotest.(check (list string)) "failure chain ordered oldest-first"
    [ "flow_reset"; "flow_reset" ]
    (List.map Nebby.Measurement.failure_reason_label report.Nebby.Measurement.failures);
  Alcotest.(check int) "only the performed retry slept" 1 (List.length !slept);
  Alcotest.(check (float 1e-9)) "backoff_total sums only performed backoffs"
    (List.fold_left ( +. ) 0.0 !slept)
    report.Nebby.Measurement.backoff_total

(* ---- defensive trace validation ---- *)

let test_validate_empty_trace () =
  let t = Netsim.Trace.create () in
  Alcotest.(check bool) "empty trace flagged" true
    (List.mem Nebby.Bif.Empty_trace (Nebby.Bif.validate t));
  Alcotest.(check int) "estimate of empty trace" 0 (List.length (Nebby.Bif.estimate t))

let test_validate_malformed_trace () =
  let t = Netsim.Trace.create () in
  let data ~seq ~payload ~now =
    Netsim.Trace.record t ~now
      (Netsim.Packet.data Netsim.Packet.Tcp ~id:0 ~seq ~payload ~retx:false ~now)
  in
  data ~seq:0 ~payload:1000 ~now:0.1;
  data ~seq:1000 ~payload:0 ~now:0.2;
  (* capture-point clock stepping backwards *)
  data ~seq:2000 ~payload:1000 ~now:0.15;
  let issues = Nebby.Bif.validate t in
  Alcotest.(check bool) "zero-length segment flagged" true
    (List.exists (function Nebby.Bif.Zero_length_segments 1 -> true | _ -> false) issues);
  Alcotest.(check bool) "non-monotonic timestamps flagged" true
    (List.exists
       (function Nebby.Bif.Non_monotonic_timestamps 1 -> true | _ -> false)
       issues);
  (* the estimator must tolerate it: sorted, zero-length ignored, no raise *)
  let bif = Nebby.Bif.estimate t in
  Alcotest.(check bool) "estimate still produced" true (List.length bif > 0);
  Alcotest.(check bool) "estimate timestamps sorted" true
    (let ts = List.map fst bif in
     List.sort compare ts = ts)

let test_pipeline_tolerates_empty () =
  let p = Nebby.Pipeline.prepare ~rtt:0.12 [] in
  Alcotest.(check int) "no segments from nothing" 0 (Nebby.Pipeline.segment_count p)

(* ---- chaos matrix ---- *)

let test_chaos_matrix_shape () =
  let control = Lazy.force control in
  let matrix =
    Nebby.Chaos.run_matrix ~ccas:[ "cubic" ]
      ~families:[ "flow_reset"; "capture_jitter" ]
      ~config:quick_config ~seed:3 ~control ()
  in
  Alcotest.(check string) "baseline row" Nebby.Chaos.baseline_family
    matrix.Nebby.Chaos.baseline.Nebby.Chaos.family;
  Alcotest.(check int) "one row per requested family" 2
    (List.length matrix.Nebby.Chaos.rows);
  Alcotest.(check int) "no invariant violations" 0
    (List.length matrix.Nebby.Chaos.violations);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "render mentions every family" true
    (let rendered = Nebby.Chaos.render matrix in
     List.for_all
       (fun (r : Nebby.Chaos.row) -> contains rendered r.Nebby.Chaos.family)
       matrix.Nebby.Chaos.rows)

let suite =
  [
    Alcotest.test_case "plan json roundtrip" `Quick test_plan_json_roundtrip;
    Alcotest.test_case "plan rejects garbage" `Quick test_plan_json_rejects_garbage;
    Alcotest.test_case "family names registered" `Quick test_family_names;
    Alcotest.test_case "named rng leaves parent intact" `Quick test_named_does_not_advance_parent;
    Alcotest.test_case "named rng streams distinct" `Quick test_named_streams_distinct;
    Alcotest.test_case "identical seeds identical traces" `Quick test_identical_seeds_identical_traces;
    Alcotest.test_case "empty plan transparent" `Quick test_empty_plan_is_transparent;
    Alcotest.test_case "link flap perturbs capture" `Quick test_link_flap_changes_capture;
    Alcotest.test_case "no fault family raises" `Slow test_no_fault_raises;
    Alcotest.test_case "flow reset diagnosed" `Quick test_flow_reset_diagnosed;
    Alcotest.test_case "truncation diagnosed" `Quick test_truncation_diagnosed;
    Alcotest.test_case "max_attempts configurable" `Quick test_max_attempts_config;
    Alcotest.test_case "backoff grows and accrues" `Quick test_backoff_accrues;
    Alcotest.test_case "retry budget exhausts before max_attempts" `Quick
      test_retry_budget_exhausted_before_max_attempts;
    Alcotest.test_case "validate empty trace" `Quick test_validate_empty_trace;
    Alcotest.test_case "validate malformed trace" `Quick test_validate_malformed_trace;
    Alcotest.test_case "pipeline tolerates empty input" `Quick test_pipeline_tolerates_empty;
    Alcotest.test_case "chaos matrix shape" `Quick test_chaos_matrix_shape;
  ]
