(* Tests for decision provenance (Obs.Provenance) and the per-stage
   profiler (Obs.Prof): schema round trips, version gating, measurement
   attachment, census aggregation, and the cross-domain buffer flushes
   performed by Engine.Pool at join. *)

let small_control =
  lazy (Nebby.Training.train ~runs_per_cca:4 ~quic_runs_per_cca:2 ~seed:7 ())

let sample_report =
  Obs.Provenance.make ~subject:"test-subject" ~label:"cubic" ~confidence:0.9 ~margin:12.5
    ~features:[ ("p50", [| 1.0; -2.5; 0.0 |]) ]
    ~stages:[ { Obs.Provenance.stage = "bif:p50"; fields = [ ("points", 100.0) ] } ]
    ~candidates:
      [
        {
          Obs.Provenance.source = "loss_gnb";
          label = "cubic";
          score = -10.0;
          confidence = 0.9;
        };
        { Obs.Provenance.source = "loss_gnb"; label = "bic"; score = -20.0; confidence = 0.0 };
      ]

(* ---- schema round trips and version gating ---- *)

let test_report_roundtrip () =
  let r = sample_report in
  Alcotest.(check int) "stamped with the current schema version"
    Obs.Provenance.schema_version r.Obs.Provenance.version;
  let r' = Obs.Provenance.of_json (Obs.Provenance.to_json r) in
  Alcotest.(check bool) "report round trips structurally" true (r = r')

let with_version_field f json =
  match json with
  | Obs.Json.Obj fields -> Obs.Json.Obj (f fields)
  | _ -> Alcotest.fail "provenance json is not an object"

let test_version_gate () =
  let json = Obs.Provenance.to_json sample_report in
  let bumped =
    with_version_field
      (List.map (fun (k, v) -> if k = "version" then (k, Obs.Json.Num 999.0) else (k, v)))
      json
  in
  Alcotest.check_raises "future version raises"
    (Obs.Provenance.Version_mismatch
       { expected = Obs.Provenance.schema_version; got = 999 })
    (fun () -> ignore (Obs.Provenance.of_json bumped));
  let stripped =
    with_version_field (List.filter (fun (k, _) -> k <> "version")) json
  in
  Alcotest.check_raises "missing version raises"
    (Obs.Provenance.Version_mismatch { expected = Obs.Provenance.schema_version; got = 0 })
    (fun () -> ignore (Obs.Provenance.of_json stripped))

let test_jsonl_roundtrip () =
  let path = Filename.temp_file "prov_test" ".jsonl" in
  let oc = open_out path in
  Obs.Provenance.write_jsonl oc sample_report;
  Obs.Provenance.write_jsonl oc sample_report;
  close_out oc;
  let rs = Obs.Provenance.read_jsonl path in
  Sys.remove path;
  Alcotest.(check int) "both records read back" 2 (List.length rs);
  Alcotest.(check bool) "records identical to the original" true
    (List.for_all (fun r -> r = sample_report) rs)

let test_render_deterministic () =
  let a = Obs.Provenance.render sample_report in
  let b =
    Obs.Provenance.render (Obs.Provenance.of_json (Obs.Provenance.to_json sample_report))
  in
  Alcotest.(check string) "render is stable across a round trip" a b;
  Alcotest.(check bool) "render starts with the verdict line" true
    (String.length a >= 7 && String.sub a 0 7 = "verdict")

(* ---- measurement attachment ---- *)

let test_measure_attaches_provenance () =
  let control = Lazy.force small_control in
  let r = Nebby.Measurement.measure_cca ~control ~seed:42 "cubic" in
  (match r.Nebby.Measurement.provenance with
  | Some p ->
    Alcotest.(check string) "subject is the measured CCA" "cubic" p.Obs.Provenance.subject;
    Alcotest.(check string) "provenance label matches the report"
      r.Nebby.Measurement.label p.Obs.Provenance.label;
    Alcotest.(check bool) "candidates recorded" true (p.Obs.Provenance.candidates <> []);
    Alcotest.(check bool) "stage summaries recorded" true (p.Obs.Provenance.stages <> []);
    Alcotest.(check bool) "feature vectors recorded" true (p.Obs.Provenance.features <> [])
  | None -> Alcotest.fail "measure attaches provenance by default");
  let r' = Nebby.Measurement.measure_cca ~control ~provenance:false ~seed:42 "cubic" in
  Alcotest.(check bool) "provenance:false omits the report" true
    (r'.Nebby.Measurement.provenance = None);
  Alcotest.(check string) "label identical with provenance off"
    r.Nebby.Measurement.label r'.Nebby.Measurement.label

let test_explain_prepared () =
  let control = Lazy.force small_control in
  let profile = Nebby.Profile.delay_50ms in
  let result = Nebby.Testbed.run_cca ~profile ~seed:11 "cubic" in
  let bif = Nebby.Bif.estimate result.Nebby.Testbed.trace in
  let prep = Nebby.Pipeline.prepare ~rtt:(Nebby.Profile.rtt profile) bif in
  let outcome, report =
    Nebby.Measurement.explain_prepared ~control ~subject:"one-trace"
      [ (profile.Nebby.Profile.name, bif, prep) ]
  in
  Alcotest.(check string) "report label matches the outcome"
    (Nebby.Classifier.outcome_label outcome)
    report.Obs.Provenance.label;
  let stage_names = List.map (fun s -> s.Obs.Provenance.stage) report.Obs.Provenance.stages in
  List.iter
    (fun prefix ->
      Alcotest.(check bool)
        (prefix ^ " stage present") true
        (List.exists
           (fun s ->
             String.length s >= String.length prefix
             && String.sub s 0 (String.length prefix) = prefix)
           stage_names))
    [ "bif:"; "pipeline:"; "trace_sig:" ];
  (* the GNB candidate list is sorted best-first *)
  let gnb =
    List.filter
      (fun c -> c.Obs.Provenance.source = "loss_gnb")
      report.Obs.Provenance.candidates
  in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Obs.Provenance.score >= b.Obs.Provenance.score && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "loss candidates sorted by score" true (sorted gnb)

(* ---- census aggregation ---- *)

let test_census_explained () =
  let control = Lazy.force small_control in
  let region = Internet.Region.Ohio and proto = Netsim.Packet.Tcp in
  let websites = Internet.Population.generate ~n:6 ~seed:77 () in
  let labels = Internet.Census.labels ~jobs:2 ~control ~proto ~region websites in
  let explained = Internet.Census.explained ~jobs:2 ~control ~proto ~region websites in
  Alcotest.(check (list string)) "labels bit-identical with provenance on"
    (List.map snd labels)
    (List.map (fun (_, r) -> r.Nebby.Measurement.label) explained);
  Alcotest.(check bool) "confidence distributions non-empty" true
    (Internet.Census.confidence_dists explained <> []);
  Alcotest.(check bool) "margin distributions non-empty" true
    (Internet.Census.margin_dists explained <> [])

(* ---- collection buffer ---- *)

let test_emit_collect () =
  Alcotest.(check bool) "not collecting by default" false (Obs.Provenance.collecting ());
  Obs.Provenance.emit sample_report;
  Alcotest.(check int) "emit without a collector is a no-op" 0
    (List.length (Obs.Provenance.drain_reports ()));
  Obs.Provenance.enable_collect ();
  Obs.Provenance.emit sample_report;
  Obs.Provenance.emit { sample_report with Obs.Provenance.subject = "second" };
  let rs = Obs.Provenance.drain_reports () in
  Obs.Provenance.disable_collect ();
  Alcotest.(check (list string)) "buffered in emission order"
    [ "test-subject"; "second" ]
    (List.map (fun r -> r.Obs.Provenance.subject) rs);
  Alcotest.(check int) "drain empties the buffer" 0
    (List.length (Obs.Provenance.drain_reports ()))

(* ---- the profiler ---- *)

let test_prof_record () =
  let x, profile =
    Obs.Prof.record (fun () ->
        Obs.Span.with_ ~name:"a" (fun () ->
            Obs.Span.with_ ~name:"b" (fun () ->
                (* enough minor-heap traffic to cross minor collections:
                   quick_stat's counters only advance at GC points *)
                for _ = 1 to 10_000 do
                  ignore (Sys.opaque_identity (Array.make 128 0.0))
                done));
        Obs.Span.with_ ~name:"a" (fun () -> ());
        41 + 1)
  in
  Alcotest.(check int) "record is transparent" 42 x;
  Alcotest.(check bool) "profiler off afterwards" false (Obs.Prof.profiling ());
  (match Obs.Prof.find profile "a" with
  | Some s -> Alcotest.(check int) "two calls folded into one path" 2 s.Obs.Prof.count
  | None -> Alcotest.fail "path a missing");
  match Obs.Prof.find profile "a;b" with
  | Some s ->
    Alcotest.(check int) "nested call keyed by full path" 1 s.Obs.Prof.count;
    Alcotest.(check bool) "allocation attributed" true (s.Obs.Prof.alloc_words >= 10_000.0)
  | None -> Alcotest.fail "path a;b missing"

let test_prof_folded_and_json () =
  let _, profile =
    Obs.Prof.record (fun () ->
        Obs.Span.with_ ~name:"outer" (fun () ->
            Obs.Span.with_ ~name:"inner" (fun () -> ())))
  in
  let folded = Obs.Prof.folded profile in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' folded) in
  Alcotest.(check int) "one folded line per path" 2 (List.length lines);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | Some i ->
        ignore
          (float_of_string (String.sub line (i + 1) (String.length line - i - 1)))
      | None -> Alcotest.fail ("malformed folded line: " ^ line))
    lines;
  Alcotest.(check bool) "nested stack present in collapsed form" true
    (List.exists
       (fun l -> String.length l >= 11 && String.sub l 0 11 = "outer;inner")
       lines);
  match Obs.Json.member "stages" (Obs.Prof.to_json profile) with
  | Some (Obs.Json.Arr stages) ->
    Alcotest.(check int) "both stages in the json summary" 2 (List.length stages)
  | _ -> Alcotest.fail "profile json has no stages array"

let test_prof_drain_absorb () =
  Obs.Prof.enable ();
  Obs.Span.with_ ~name:"x" (fun () -> ());
  let p1 = Obs.Prof.drain () in
  Obs.Span.with_ ~name:"x" (fun () -> ());
  let p2 = Obs.Prof.drain () in
  Obs.Prof.absorb p1;
  Obs.Prof.absorb p2;
  let merged = Obs.Prof.drain () in
  Obs.Prof.disable ();
  match Obs.Prof.find merged "x" with
  | Some s -> Alcotest.(check int) "absorb merges counts" 2 s.Obs.Prof.count
  | None -> Alcotest.fail "merged profile missing path x"

(* ---- Engine.Pool flushes both buffers at join ---- *)

let test_pool_flushes_buffers () =
  let results, profile =
    Obs.Prof.record (fun () ->
        Obs.Provenance.enable_collect ();
        Engine.Pool.map ~jobs:3
          (fun i ->
            Obs.Span.with_ ~name:"work" (fun () ->
                Obs.Provenance.emit
                  { sample_report with Obs.Provenance.subject = string_of_int i };
                i * 2))
          (Array.init 8 (fun i -> i)))
  in
  let reports = Obs.Provenance.drain_reports () in
  Obs.Provenance.disable_collect ();
  Alcotest.(check (array int)) "results in canonical order"
    (Array.init 8 (fun i -> i * 2))
    results;
  (match Obs.Prof.find profile "work" with
  | Some s ->
    Alcotest.(check int) "worker spans merged into the caller's profile" 8
      s.Obs.Prof.count
  | None -> Alcotest.fail "work path missing from merged profile");
  Alcotest.(check int) "every worker's reports flushed at join" 8 (List.length reports);
  Alcotest.(check int) "each job's report arrived exactly once" 8
    (List.length
       (List.sort_uniq compare (List.map (fun r -> r.Obs.Provenance.subject) reports)))

let suite =
  [
    Alcotest.test_case "report json round trip" `Quick test_report_roundtrip;
    Alcotest.test_case "schema version gate fails loudly" `Quick test_version_gate;
    Alcotest.test_case "jsonl write/read round trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "render is deterministic" `Quick test_render_deterministic;
    Alcotest.test_case "measure attaches provenance" `Quick test_measure_attaches_provenance;
    Alcotest.test_case "explain_prepared builds full report" `Quick test_explain_prepared;
    Alcotest.test_case "explained census matches plain labels" `Quick test_census_explained;
    Alcotest.test_case "collection buffer emit/drain" `Quick test_emit_collect;
    Alcotest.test_case "profiler record and folding" `Quick test_prof_record;
    Alcotest.test_case "profiler folded-stack and json export" `Quick
      test_prof_folded_and_json;
    Alcotest.test_case "profiler drain/absorb merge" `Quick test_prof_drain_absorb;
    Alcotest.test_case "pool flushes prof and provenance buffers" `Quick
      test_pool_flushes_buffers;
  ]
